#include "pcs/mbm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wavesim::pcs {

std::vector<PortId> ordered_minimal_ports(const topo::KAryNCube& topology,
                                          NodeId node, NodeId dest) {
  const auto offsets = topology.min_offsets(node, dest);
  std::vector<std::pair<std::int32_t, PortId>> scored;
  for (std::size_t d = 0; d < offsets.size(); ++d) {
    if (offsets[d] == 0) continue;
    scored.emplace_back(
        -std::abs(offsets[d]),
        topo::KAryNCube::port_of(static_cast<std::int32_t>(d), offsets[d] > 0));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<PortId> ports;
  ports.reserve(scored.size());
  for (const auto& [neg_mag, port] : scored) ports.push_back(port);
  return ports;
}

MbmDecision decide(const topo::KAryNCube& topology, NodeId node, NodeId dest,
                   const std::vector<PortView>& view, PortId arrival_port,
                   std::int32_t misroutes, std::int32_t max_misroutes,
                   bool force) {
  if (static_cast<std::int32_t>(view.size()) != topology.num_ports()) {
    throw std::invalid_argument("mbm::decide: view size mismatch");
  }
  if (node == dest) return MbmDecision{MbmAction::kDeliver, kInvalidPort, false};

  const auto minimal = ordered_minimal_ports(topology, node, dest);

  // 1. A free minimal channel pair.
  for (PortId p : minimal) {
    if (view[p] == PortView::kAvailable) {
      return MbmDecision{MbmAction::kAdvance, p, false};
    }
  }
  // 2. Force mode: wait for a minimal channel held by an *established*
  //    circuit (CLRP will tear it down). Never wait on kBusyPending.
  if (force) {
    for (PortId p : minimal) {
      if (view[p] == PortView::kBusyEstablished) {
        return MbmDecision{MbmAction::kWaitForce, p, false};
      }
    }
  }
  // 3. Misroute through any other free pair (never straight back where we
  //    came from: the reverse hop is what backtracking is for).
  if (misroutes < max_misroutes) {
    for (PortId p = 0; p < topology.num_ports(); ++p) {
      if (view[p] != PortView::kAvailable) continue;
      // Input port q of a node faces the neighbor in direction q, so the
      // output link back toward the previous node is port q itself.
      if (p == arrival_port) continue;
      // Minimal ports were already rejected above.
      if (std::find(minimal.begin(), minimal.end(), p) != minimal.end()) {
        continue;
      }
      return MbmDecision{MbmAction::kAdvance, p, true};
    }
    // A Force probe may also wait on a non-minimal established circuit if
    // that is the only way forward within the misroute budget.
    if (force) {
      for (PortId p = 0; p < topology.num_ports(); ++p) {
        if (view[p] != PortView::kBusyEstablished) continue;
        if (p == arrival_port) continue;
        if (std::find(minimal.begin(), minimal.end(), p) != minimal.end()) {
          continue;
        }
        // Advancing here after the wait will consume a misroute credit.
        return MbmDecision{MbmAction::kWaitForce, p, true};
      }
    }
  }
  // 4. Nothing workable here (including the Theorem-1 case: every
  //    requested channel belongs to a circuit still being established).
  return MbmDecision{MbmAction::kBacktrack, kInvalidPort, false};
}

}  // namespace wavesim::pcs
