#include "pcs/mbm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace wavesim::pcs {

namespace {

/// Fixed-capacity minimal-port list (ports fit easily: 2 per dimension,
/// and HistoryStore already caps ports at 32). Keeps decide() free of
/// per-step heap allocation.
struct MinimalPorts {
  std::array<PortId, 32> ports;
  std::int32_t count = 0;

  bool contains(PortId p) const noexcept {
    for (std::int32_t i = 0; i < count; ++i) {
      if (ports[i] == p) return true;
    }
    return false;
  }
};

MinimalPorts collect_minimal(const topo::KAryNCube& topology, NodeId node,
                             NodeId dest) {
  std::array<std::pair<std::int32_t, PortId>, 32> scored;
  std::int32_t n = 0;
  for (std::int32_t d = 0; d < topology.num_dims(); ++d) {
    const std::int32_t off = topology.min_offset(node, dest, d);
    if (off == 0) continue;
    scored[n++] = {-std::abs(off),
                   topo::KAryNCube::port_of(d, off > 0)};
  }
  std::sort(scored.begin(), scored.begin() + n);
  MinimalPorts out;
  out.count = n;
  for (std::int32_t i = 0; i < n; ++i) out.ports[i] = scored[i].second;
  return out;
}

}  // namespace

std::vector<PortId> ordered_minimal_ports(const topo::KAryNCube& topology,
                                          NodeId node, NodeId dest) {
  const MinimalPorts minimal = collect_minimal(topology, node, dest);
  return std::vector<PortId>(minimal.ports.begin(),
                             minimal.ports.begin() + minimal.count);
}

MbmDecision decide(const topo::KAryNCube& topology, NodeId node, NodeId dest,
                   const std::vector<PortView>& view, PortId arrival_port,
                   std::int32_t misroutes, std::int32_t max_misroutes,
                   bool force, bool mutate_force_unacked) {
  if (static_cast<std::int32_t>(view.size()) != topology.num_ports()) {
    throw std::invalid_argument("mbm::decide: view size mismatch");
  }
  if (node == dest) {
    return MbmDecision{MbmAction::kDeliver, kInvalidPort, false};
  }

  const MinimalPorts minimal = collect_minimal(topology, node, dest);

  // Seeded bug: treat still-establishing channels as waitable too. This is
  // exactly what the Theorem-1 proof forbids; the BMC and fsck I7 must both
  // catch it (docs/TESTING.md mutation table).
  const auto waitable = [mutate_force_unacked](PortView v) {
    return v == PortView::kBusyEstablished ||
           (mutate_force_unacked && v == PortView::kBusyPending);
  };

  // 1. A free minimal channel pair.
  for (std::int32_t i = 0; i < minimal.count; ++i) {
    const PortId p = minimal.ports[i];
    if (view[p] == PortView::kAvailable) {
      return MbmDecision{MbmAction::kAdvance, p, false};
    }
  }
  // 2. Force mode: wait for a minimal channel held by an *established*
  //    circuit (CLRP will tear it down). Never wait on kBusyPending.
  if (force) {
    for (std::int32_t i = 0; i < minimal.count; ++i) {
      const PortId p = minimal.ports[i];
      if (waitable(view[p])) {
        return MbmDecision{MbmAction::kWaitForce, p, false};
      }
    }
  }
  // 3. Misroute through any other free pair (never straight back where we
  //    came from: the reverse hop is what backtracking is for).
  if (misroutes < max_misroutes) {
    for (PortId p = 0; p < topology.num_ports(); ++p) {
      if (view[p] != PortView::kAvailable) continue;
      // Input port q of a node faces the neighbor in direction q, so the
      // output link back toward the previous node is port q itself.
      if (p == arrival_port) continue;
      // Minimal ports were already rejected above.
      if (minimal.contains(p)) continue;
      return MbmDecision{MbmAction::kAdvance, p, true};
    }
    // A Force probe may also wait on a non-minimal established circuit if
    // that is the only way forward within the misroute budget.
    if (force) {
      for (PortId p = 0; p < topology.num_ports(); ++p) {
        if (!waitable(view[p])) continue;
        if (p == arrival_port) continue;
        if (minimal.contains(p)) continue;
        // Advancing here after the wait will consume a misroute credit.
        return MbmDecision{MbmAction::kWaitForce, p, true};
      }
    }
  }
  // 4. Nothing workable here (including the Theorem-1 case: every
  //    requested channel belongs to a circuit still being established).
  return MbmDecision{MbmAction::kBacktrack, kInvalidPort, false};
}

}  // namespace wavesim::pcs
