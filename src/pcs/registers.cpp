#include "pcs/registers.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::pcs {

const char* to_string(ChannelStatus status) noexcept {
  switch (status) {
    case ChannelStatus::kFree: return "free";
    case ChannelStatus::kReservedByProbe: return "reserved";
    case ChannelStatus::kBusyCircuit: return "busy";
    case ChannelStatus::kFaulty: return "faulty";
  }
  return "?";
}

SwitchRegisters::SwitchRegisters(std::int32_t num_ports) : out_(num_ports) {
  if (num_ports < 1) {
    throw std::invalid_argument("SwitchRegisters: num_ports < 1");
  }
}

const SwitchRegisters::OutChannel& SwitchRegisters::at(PortId out_port) const {
  return out_.at(out_port);
}

SwitchRegisters::OutChannel& SwitchRegisters::at(PortId out_port) {
  return out_.at(out_port);
}

void SwitchRegisters::reserve(PortId out_port, ProbeId probe, PortId in_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kFree) {
    throw std::logic_error("SwitchRegisters::reserve on non-free channel");
  }
  ch.status = ChannelStatus::kReservedByProbe;
  ch.probe = probe;
  ch.circuit = kInvalidCircuit;
  ch.ack_returned = false;
  ch.in_port = in_port;
}

void SwitchRegisters::release_reservation(PortId out_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kReservedByProbe) {
    throw std::logic_error("release_reservation on non-reserved channel");
  }
  ch = OutChannel{};
}

void SwitchRegisters::commit(PortId out_port, CircuitId circuit) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kReservedByProbe) {
    throw std::logic_error("commit on non-reserved channel");
  }
  ch.status = ChannelStatus::kBusyCircuit;
  ch.probe = kInvalidProbe;
  ch.circuit = circuit;
}

void SwitchRegisters::mark_ack_returned(PortId out_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kBusyCircuit) {
    throw std::logic_error("mark_ack_returned on non-circuit channel");
  }
  ch.ack_returned = true;
}

void SwitchRegisters::release_circuit(PortId out_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kBusyCircuit) {
    throw std::logic_error("release_circuit on non-circuit channel");
  }
  ch = OutChannel{};
}

void SwitchRegisters::mark_faulty(PortId out_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kFree) {
    throw std::logic_error("mark_faulty on non-free channel");
  }
  ch = OutChannel{};
  ch.status = ChannelStatus::kFaulty;
}

void SwitchRegisters::clear_faulty(PortId out_port) {
  OutChannel& ch = at(out_port);
  if (ch.status != ChannelStatus::kFaulty) {
    throw std::logic_error("clear_faulty on non-faulty channel");
  }
  ch = OutChannel{};
}

PortId SwitchRegisters::direct_map(PortId in_port) const {
  for (PortId p = 0; p < num_ports(); ++p) {
    const OutChannel& ch = out_[p];
    if (ch.status != ChannelStatus::kFree &&
        ch.status != ChannelStatus::kFaulty && ch.in_port == in_port) {
      return p;
    }
  }
  return kInvalidPort;
}

PortId SwitchRegisters::reverse_map(PortId out_port) const {
  const OutChannel& ch = at(out_port);
  if (ch.status == ChannelStatus::kFree || ch.status == ChannelStatus::kFaulty) {
    return kInvalidPort;
  }
  return ch.in_port;
}

std::int32_t SwitchRegisters::count(ChannelStatus status_value) const {
  std::int32_t n = 0;
  for (const auto& ch : out_) n += ch.status == status_value ? 1 : 0;
  return n;
}

RegisterFile::RegisterFile(const topo::KAryNCube& topology,
                           std::int32_t num_switches)
    : num_switches_(num_switches) {
  if (num_switches < 1) {
    throw std::invalid_argument("RegisterFile: num_switches < 1");
  }
  regs_.reserve(static_cast<std::size_t>(topology.num_nodes()) * num_switches);
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    for (std::int32_t s = 0; s < num_switches; ++s) {
      regs_.emplace_back(topology.num_ports());
    }
  }
}

void SwitchRegisters::snap(snap::Archive& ar) {
  for (OutChannel& ch : out_) {
    ar.pod(ch.status);
    ar.pod(ch.probe);
    ar.pod(ch.circuit);
    ar.pod(ch.ack_returned);
    ar.pod(ch.in_port);
  }
}

void RegisterFile::snap(snap::Archive& ar) {
  for (SwitchRegisters& regs : regs_) regs.snap(ar);
}

}  // namespace wavesim::pcs
