#include "pcs/probe.hpp"

namespace wavesim::pcs {

const char* to_string(ControlKind kind) noexcept {
  switch (kind) {
    case ControlKind::kProbe: return "probe";
    case ControlKind::kAck: return "ack";
    case ControlKind::kTeardown: return "teardown";
    case ControlKind::kReleaseRequest: return "release-request";
  }
  return "?";
}

}  // namespace wavesim::pcs
