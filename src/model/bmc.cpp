#include "model/bmc.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace wavesim::model {

namespace {

using analysis::CheckRow;
using analysis::CheckStatus;

verify::CycleWitness witness_of(const std::vector<TraceStep>& trace) {
  verify::CycleWitness witness;
  witness.graph = "bmc-trace";
  witness.hops.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    verify::WitnessHop hop;
    hop.vertex = static_cast<std::int32_t>(i);
    hop.name = trace[i].text;
    hop.node = trace[i].node;
    hop.port = trace[i].port;
    hop.index = trace[i].step.job;
    witness.hops.push_back(std::move(hop));
  }
  return witness;
}

}  // namespace

bool BmcReport::ok() const noexcept {
  for (const CheckRow& row : rows) {
    if (row.status == CheckStatus::kViolation) return false;
  }
  return true;
}

std::size_t BmcReport::count(CheckStatus status) const noexcept {
  std::size_t n = 0;
  for (const CheckRow& row : rows) {
    if (row.status == status) ++n;
  }
  return n;
}

bool bmc_supported(const sim::SimConfig& config, std::string* why) {
  const auto reject = [why](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (config.protocol.protocol == sim::ProtocolKind::kWormholeOnly) {
    return reject("the wormhole baseline has no probes or circuits to model");
  }
  std::int64_t nodes = 1;
  for (std::int32_t r : config.topology.radix) nodes *= r;
  if (nodes < 2 || nodes > 4) {
    return reject("BMC envelope is 2-4 nodes; pass e.g. --radix 3 --mesh");
  }
  if (config.topology.radix.size() > 2) {
    return reject("BMC envelope allows at most 2 dimensions");
  }
  if (config.router.wave_switches < 1 || config.router.wave_switches > 2) {
    return reject("BMC envelope is k in {1, 2} wave switches");
  }
  if (config.protocol.circuit_cache_entries > 2) {
    return reject("BMC envelope allows at most 2 circuit-cache entries");
  }
  if (config.protocol.max_misroutes > 2) {
    return reject("BMC envelope allows at most 2 misroutes");
  }
  if (config.faults.link_fault_rate > 0.0 || config.faults.dynamic()) {
    return reject("BMC models a fault-free control plane");
  }
  return true;
}

std::vector<Job> bmc_jobs(const sim::SimConfig& config) {
  std::int64_t nodes = 1;
  for (std::int32_t r : config.topology.radix) nodes *= r;
  if (config.topology.radix.size() == 2) {
    // 2x2 mesh/torus: two crossing diagonals plus the reverse of one, so
    // probes contend on both dimensions.
    return {{0, 3}, {1, 2}, {3, 0}};
  }
  switch (nodes) {
    case 2:
      return {{0, 1}, {1, 0}};
    case 3:
      // Two jobs share a source: with cache <= 2 this exercises launch
      // blocking and the eviction path, plus a reverse-direction conflict.
      return {{0, 2}, {0, 1}, {2, 0}};
    default:
      // Ring of 4: every job goes 2 hops; the torus tie-break sends all of
      // them the positive way, the classic cyclic-conflict pattern.
      return {{0, 2}, {1, 3}, {2, 0}, {3, 1}};
  }
}

BmcReport run_bmc(const sim::SimConfig& config, const BmcOptions& options) {
  std::string why;
  if (!bmc_supported(config, &why)) {
    throw std::invalid_argument("run_bmc: " + why);
  }

  BmcReport report;
  report.id = analysis::config_label(config);
  report.config = config;
  report.jobs = bmc_jobs(config);

  ProtocolModel model(config, report.jobs);
  Explorer explorer(model);
  ExploreOptions eopts;
  eopts.max_states = options.max_states;
  eopts.max_depth = options.max_depth;
  const ExploreResult res = explorer.explore(eopts);

  report.states = res.states;
  report.transitions = res.transitions;
  report.depth = res.depth;
  report.complete = res.complete;
  report.symmetry_group = res.symmetry_group;
  if (res.has_violation) {
    report.counterexample = res.violation.trace;
    report.violated_row = res.violation.row;
  }

  const bool carp = config.protocol.protocol == sim::ProtocolKind::kCarp;
  std::ostringstream exhaustive;
  exhaustive << "exhaustive over " << res.states << " canonical states ("
             << res.transitions << " transitions, depth " << res.depth
             << ", symmetry group " << res.symmetry_group << ", "
             << report.jobs.size() << " jobs)";
  std::ostringstream bounded;
  bounded << "budget exhausted after " << res.states << " states / depth "
          << res.depth << " without a violation; NOT a proof — raise "
          << "--bmc-states/--bmc-depth";

  const auto add_row = [&](const char* id, const char* skip_detail) {
    CheckRow row;
    row.id = id;
    if (skip_detail != nullptr) {
      row.status = CheckStatus::kSkipped;
      row.detail = skip_detail;
    } else if (res.has_violation && res.violation.row == id) {
      row.status = CheckStatus::kViolation;
      std::ostringstream detail;
      detail << res.violation.detail << " (schedule of "
             << res.violation.trace.size() << " steps)";
      row.detail = detail.str();
      row.witness = witness_of(res.violation.trace);
    } else if (res.complete) {
      row.status = CheckStatus::kOk;
      row.detail = exhaustive.str();
    } else if (res.has_violation) {
      // Exploration stopped at another row's counterexample; this row was
      // neither proven nor refuted.
      row.status = CheckStatus::kBoundedOut;
      row.detail = "exploration stopped at the " + res.violation.row +
                   " counterexample before covering the state space";
    } else {
      row.status = CheckStatus::kBoundedOut;
      row.detail = bounded.str();
    }
    report.rows.push_back(std::move(row));
  };

  add_row("bmc-force-waits-only-on-acked",
          carp ? "CARP never sets Force, so the premise is vacuous here"
               : nullptr);
  add_row("bmc-no-wait-cycle", nullptr);
  add_row("bmc-teardown-drains", nullptr);
  add_row("bmc-no-deadlock", nullptr);
  return report;
}

std::vector<sim::SimConfig> enumerate_bmc_configs() {
  std::vector<sim::SimConfig> out;

  struct Topo {
    std::vector<std::int32_t> radix;
    bool torus;
  };
  const std::vector<Topo> topos = {
      {{2}, false}, {{3}, false}, {{4}, true}, {{2, 2}, false}};

  const auto base = [](const Topo& t) {
    sim::SimConfig config;
    config.topology.radix = t.radix;
    config.topology.torus = t.torus;
    config.router.routing = sim::RoutingKind::kDimensionOrder;
    config.router.wormhole_vcs = 2;
    config.protocol.circuit_cache_entries = 1;
    return config;
  };

  for (const Topo& t : topos) {
    // CLRP full: the whole (k, m) corner of the envelope.
    for (std::int32_t k : {1, 2}) {
      for (std::int32_t m : {0, 1}) {
        sim::SimConfig config = base(t);
        config.protocol.protocol = sim::ProtocolKind::kClrp;
        config.protocol.clrp_variant = sim::ClrpVariant::kFull;
        config.router.wave_switches = k;
        config.protocol.max_misroutes = m;
        out.push_back(config);
      }
    }
    // Variants and CARP at one representative (k, m) point each.
    {
      sim::SimConfig config = base(t);
      config.protocol.protocol = sim::ProtocolKind::kClrp;
      config.protocol.clrp_variant = sim::ClrpVariant::kForceFirst;
      config.router.wave_switches = 1;
      config.protocol.max_misroutes = 1;
      out.push_back(config);
    }
    {
      sim::SimConfig config = base(t);
      config.protocol.protocol = sim::ProtocolKind::kClrp;
      config.protocol.clrp_variant = sim::ClrpVariant::kSingleSwitch;
      config.router.wave_switches = 2;
      config.protocol.max_misroutes = 0;
      out.push_back(config);
    }
    {
      sim::SimConfig config = base(t);
      config.protocol.protocol = sim::ProtocolKind::kCarp;
      config.router.wave_switches = 1;
      config.protocol.max_misroutes = 1;
      out.push_back(config);
    }
  }
  // Cache-pressure point: two same-source jobs against a 2-entry cache.
  {
    sim::SimConfig config;
    config.topology.radix = {3};
    config.topology.torus = false;
    config.protocol.protocol = sim::ProtocolKind::kClrp;
    config.protocol.clrp_variant = sim::ClrpVariant::kFull;
    config.router.wave_switches = 1;
    config.protocol.max_misroutes = 1;
    config.protocol.circuit_cache_entries = 2;
    out.push_back(config);
  }
  // pcs_only: unbounded retries, the deadlock row earns its keep.
  for (const auto& radix : {std::vector<std::int32_t>{3},
                            std::vector<std::int32_t>{4}}) {
    sim::SimConfig config;
    config.topology.radix = radix;
    config.topology.torus = radix[0] == 4;
    config.protocol.protocol = sim::ProtocolKind::kClrp;
    config.protocol.clrp_variant = sim::ClrpVariant::kFull;
    config.router.wave_switches = 1;
    config.protocol.max_misroutes = 1;
    config.protocol.circuit_cache_entries = 1;
    config.protocol.pcs_only = true;
    out.push_back(config);
  }

  for (const sim::SimConfig& config : out) {
    config.validate();  // enumerations must stay inside the design space
    std::string why;
    if (!bmc_supported(config, &why)) {
      throw std::logic_error("enumerate_bmc_configs: " + why);
    }
  }
  return out;
}

}  // namespace wavesim::model
