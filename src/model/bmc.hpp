// Bounded model checking behind wavecheck (--bmc).
//
// run_bmc() explores every interleaving of a small fixed job set over one
// configuration restricted to the BMC envelope (2-4 nodes, k <= 2, cache
// <= 2, m <= 2, no faults) and turns the result into CheckRows in the same
// shape the static analyzer emits, closing the rows analyze_config() must
// skip:
//   bmc-force-waits-only-on-acked  Theorem 1 linchpin, checked at every
//                                  Force decision (CARP: skipped, no Force);
//   bmc-no-wait-cycle              no wait-for cycle among parked probes in
//                                  any reachable state;
//   bmc-teardown-drains            a teardown only frees hops its own
//                                  circuit acked;
//   bmc-no-deadlock                every successor-free state is terminally
//                                  happy (done / fallen back / idle cached
//                                  circuit).
// A row is kOk only when exploration was exhaustive; a budget exit yields
// kBoundedOut, never ok. A violation carries the decoded counterexample
// both as a CycleWitness (graph "bmc-trace", one hop per schedule step, in
// the exact format wavecheck already prints) and as the raw trace for the
// concrete-replay bridge (check/bmc_replay.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "model/explorer.hpp"
#include "model/model.hpp"
#include "sim/config.hpp"

namespace wavesim::model {

struct BmcOptions {
  std::int64_t max_states = 200000;
  std::int32_t max_depth = 4096;
};

struct BmcReport {
  std::string id;  ///< analysis::config_label() of the config
  sim::SimConfig config;
  std::vector<Job> jobs;
  std::int64_t states = 0;
  std::int64_t transitions = 0;
  std::int32_t depth = 0;
  bool complete = false;
  std::int32_t symmetry_group = 1;
  std::vector<analysis::CheckRow> rows;
  /// Non-empty iff a row was violated: the full counterexample schedule.
  std::vector<TraceStep> counterexample;
  std::string violated_row;  ///< id of the violated row ("" if none)

  bool ok() const noexcept;
  std::size_t count(analysis::CheckStatus status) const noexcept;
};

/// True when `config` fits the abstracted model's envelope. On rejection,
/// `why` (if non-null) gets a one-line reason.
bool bmc_supported(const sim::SimConfig& config, std::string* why = nullptr);

/// The fixed job set explored for `config` (chosen per topology so the
/// interleavings exercise contention, the cache, and cyclic conflicts).
std::vector<Job> bmc_jobs(const sim::SimConfig& config);

/// Explore `config` and fill the report. Throws std::invalid_argument when
/// bmc_supported() is false.
BmcReport run_bmc(const sim::SimConfig& config, const BmcOptions& options);

/// The BMC slice of the design space: every supported protocol/variant over
/// 2-4 node lines, rings and a 2x2 mesh with k <= 2, m <= 1, cache <= 2.
std::vector<sim::SimConfig> enumerate_bmc_configs();

}  // namespace wavesim::model
