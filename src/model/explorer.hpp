// Explicit-state explorer for the abstracted protocol model.
//
// Plain BFS over ProtocolModel::successors() with a hashed visited set
// keyed on a *canonical* state encoding: before hashing, a state is mapped
// through every certified topology automorphism and the lexicographically
// smallest encoding wins. Candidate automorphisms are the ring translations
// of a 1-D torus; each one is certified at construction time against the
// actual topology (neighbor commutation, min-offset invariance), the job
// set (a src/dest bijection must exist) and the InitialSwitch staggering —
// an uncertified candidate is simply dropped, so symmetry reduction can
// only merge states that are genuinely indistinguishable to the protocol.
// Meshes and multi-dimension topologies certify only the identity.
//
// Budgets are honest: running out of states or depth yields complete=false
// and the caller must report bounded-out, never ok. The first violation
// stops exploration and is decoded into a step-by-step trace by walking
// the BFS parent pointers (sound because the queue stores the actual
// representative states the steps were computed from).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace wavesim::model {

/// One decoded step of a counterexample schedule.
struct TraceStep {
  Step step;
  std::string text;
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
};

struct Violation {
  std::string row;     ///< bmc-* row id refuted
  std::string detail;  ///< human explanation
  std::vector<TraceStep> trace;  ///< schedule from the initial state
};

struct ExploreOptions {
  std::int64_t max_states = 200000;
  std::int32_t max_depth = 4096;
};

struct ExploreResult {
  std::int64_t states = 0;       ///< distinct canonical states stored
  std::int64_t transitions = 0;  ///< successor edges examined
  std::int32_t depth = 0;        ///< deepest BFS level reached
  /// True iff the frontier drained within both budgets (exhaustive proof).
  bool complete = false;
  std::int32_t symmetry_group = 1;  ///< certified automorphisms incl. id
  bool has_violation = false;
  Violation violation;
};

class Explorer {
 public:
  /// `model` must outlive the explorer.
  explicit Explorer(const ProtocolModel& model);

  std::int32_t symmetry_group() const noexcept {
    return static_cast<std::int32_t>(perms_.size()) + 1;
  }

  /// Lexicographically minimal encoding over the certified automorphisms.
  std::string canonical(const State& s) const;

  ExploreResult explore(const ExploreOptions& opts) const;

 private:
  struct Perm {
    std::vector<NodeId> node_map;         ///< node_map[v] = pi(v)
    std::vector<std::int32_t> job_map;    ///< job_map[j] = pi(j)
  };
  bool certify(Perm& perm) const;
  State apply(const Perm& perm, const State& s) const;

  const ProtocolModel& model_;
  std::vector<Perm> perms_;  ///< certified non-identity automorphisms
};

}  // namespace wavesim::model
