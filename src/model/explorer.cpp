#include "model/explorer.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace wavesim::model {

namespace {

std::uint8_t remap_channel(std::uint8_t c,
                           const std::vector<std::int32_t>& job_map) {
  if (c == 0) return 0;
  const std::int32_t job = (c - 1) / 2;
  const std::int32_t tag = (c - 1) % 2;  // 0 = reserved, 1 = acked
  return static_cast<std::uint8_t>(
      1 + 2 * job_map[static_cast<std::size_t>(job)] + tag);
}

}  // namespace

Explorer::Explorer(const ProtocolModel& model) : model_(model) {
  const topo::KAryNCube& topo = model_.topology();
  // Candidate automorphisms: translations of a 1-D ring. Anything else
  // (meshes, multi-dim) keeps the identity only.
  if (topo.num_dims() != 1 || !topo.torus()) return;
  const std::int32_t n = topo.num_nodes();
  for (std::int32_t t = 1; t < n; ++t) {
    Perm perm;
    perm.node_map.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      perm.node_map[static_cast<std::size_t>(v)] = (v + t) % n;
    }
    if (certify(perm)) perms_.push_back(std::move(perm));
  }
}

bool Explorer::certify(Perm& perm) const {
  const topo::KAryNCube& topo = model_.topology();
  const std::int32_t n = topo.num_nodes();
  const auto pi = [&perm](NodeId v) {
    return perm.node_map[static_cast<std::size_t>(v)];
  };
  // (a) neighbor commutation: pi(neighbor(v, p)) == neighbor(pi(v), p),
  // including the no-neighbor case, for every port with ports unchanged.
  for (NodeId v = 0; v < n; ++v) {
    for (PortId p = 0; p < topo.num_ports(); ++p) {
      const NodeId via = topo.neighbor(v, p);
      const NodeId mapped = topo.neighbor(pi(v), p);
      if (via == kInvalidNode ? mapped != kInvalidNode
                              : mapped != pi(via)) {
        return false;
      }
    }
  }
  // (b) minimal-offset invariance, so MB-m sees identical views (the torus
  // tie-break "exact ties go positive" must survive the relabeling).
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      for (std::int32_t d = 0; d < topo.num_dims(); ++d) {
        if (topo.min_offset(a, b, d) != topo.min_offset(pi(a), pi(b), d)) {
          return false;
        }
      }
    }
  }
  // (c) the job set must map onto itself; record the bijection.
  const std::vector<Job>& jobs = model_.jobs();
  perm.job_map.assign(jobs.size(), -1);
  std::vector<bool> used(jobs.size(), false);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job image{pi(jobs[j].src), pi(jobs[j].dest)};
    bool found = false;
    for (std::size_t m = 0; m < jobs.size(); ++m) {
      if (used[m] || !(jobs[m] == image)) continue;
      perm.job_map[j] = static_cast<std::int32_t>(m);
      used[m] = true;
      found = true;
      break;
    }
    if (!found) return false;
  }
  // (d) InitialSwitch staggering is part of the protocol, not the graph.
  for (NodeId v = 0; v < n; ++v) {
    if (model_.initial_switch(v) != model_.initial_switch(pi(v))) {
      return false;
    }
  }
  return true;
}

State Explorer::apply(const Perm& perm, const State& s) const {
  const topo::KAryNCube& topo = model_.topology();
  const std::int32_t k = model_.num_switches();
  State out;
  out.channel.assign(s.channel.size(), 0);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const NodeId pv = perm.node_map[static_cast<std::size_t>(v)];
    for (std::int32_t sw = 0; sw < k; ++sw) {
      for (PortId p = 0; p < topo.num_ports(); ++p) {
        out.channel[static_cast<std::size_t>(
            model_.channel_slot(pv, sw, p))] =
            remap_channel(s.channel[static_cast<std::size_t>(
                              model_.channel_slot(v, sw, p))],
                          perm.job_map);
      }
    }
  }
  out.jobs.resize(s.jobs.size());
  for (std::size_t j = 0; j < s.jobs.size(); ++j) {
    JobState nj = s.jobs[j];
    if (nj.node != kInvalidNode) {
      nj.node = perm.node_map[static_cast<std::size_t>(nj.node)];
    }
    for (HopRec& hop : nj.path) {
      hop.from = perm.node_map[static_cast<std::size_t>(hop.from)];
    }
    std::vector<std::uint8_t> hist(nj.history.size(), 0);
    for (std::size_t v = 0; v < nj.history.size(); ++v) {
      hist[static_cast<std::size_t>(perm.node_map[v])] = nj.history[v];
    }
    nj.history = std::move(hist);
    out.jobs[static_cast<std::size_t>(perm.job_map[j])] = std::move(nj);
  }
  return out;
}

std::string Explorer::canonical(const State& s) const {
  std::string best = model_.encode(s);
  for (const Perm& perm : perms_) {
    std::string alt = model_.encode(apply(perm, s));
    if (alt < best) best = std::move(alt);
  }
  return best;
}

ExploreResult Explorer::explore(const ExploreOptions& opts) const {
  ExploreResult result;
  result.symmetry_group = symmetry_group();

  struct Meta {
    std::int64_t parent = -1;
    TraceStep step;  ///< the step that produced this state
  };
  std::vector<State> reps;
  std::vector<Meta> metas;
  std::vector<std::int32_t> depths;
  std::unordered_map<std::string, std::int64_t> visited;
  std::deque<std::int64_t> frontier;

  const auto trace_to = [&](std::int64_t idx) {
    std::vector<TraceStep> trace;
    for (std::int64_t at = idx; at > 0; at = metas[at].parent) {
      trace.push_back(metas[at].step);
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  const State init = model_.initial_state();
  visited.emplace(canonical(init), 0);
  reps.push_back(init);
  metas.emplace_back();
  depths.push_back(0);
  frontier.push_back(0);
  result.states = 1;

  bool budget_hit = false;
  while (!frontier.empty() && !result.has_violation) {
    const std::int64_t idx = frontier.front();
    frontier.pop_front();
    const std::int32_t depth = depths[idx];
    if (depth > result.depth) result.depth = depth;

    // State-level checks run on every reached state.
    const State& s = reps[idx];
    const std::vector<std::int32_t> cycle = model_.wait_cycle(s);
    if (!cycle.empty()) {
      result.has_violation = true;
      result.violation.row = "bmc-no-wait-cycle";
      std::ostringstream detail;
      detail << "wait-for cycle among parked Force probes:";
      for (std::int32_t j : cycle) {
        const JobState& js = s.jobs[static_cast<std::size_t>(j)];
        detail << " job" << j << "@(n" << js.node << ",p"
               << static_cast<int>(js.wait_port) << ')';
      }
      result.violation.detail = detail.str();
      result.violation.trace = trace_to(idx);
      break;
    }

    const std::vector<Successor> succs = model_.successors(s);
    if (succs.empty()) {
      if (!model_.terminal_ok(s)) {
        result.has_violation = true;
        result.violation.row = "bmc-no-deadlock";
        std::ostringstream detail;
        detail << "deadlock: no enabled transition but jobs are stuck:";
        for (std::size_t j = 0; j < s.jobs.size(); ++j) {
          detail << " job" << j << '=' << to_string(s.jobs[j].phase);
        }
        result.violation.detail = detail.str();
        result.violation.trace = trace_to(idx);
        break;
      }
      continue;
    }

    if (depth >= opts.max_depth) {
      budget_hit = true;
      continue;
    }
    for (const Successor& succ : succs) {
      ++result.transitions;
      if (!succ.violation_row.empty()) {
        result.has_violation = true;
        result.violation.row = succ.violation_row;
        result.violation.detail = succ.violation_detail;
        result.violation.trace = trace_to(idx);
        result.violation.trace.push_back(
            TraceStep{succ.step, succ.text, succ.node, succ.port});
        break;
      }
      std::string key = canonical(succ.state);
      if (visited.contains(key)) continue;
      if (result.states >= opts.max_states) {
        budget_hit = true;
        continue;
      }
      const std::int64_t nidx = static_cast<std::int64_t>(reps.size());
      visited.emplace(std::move(key), nidx);
      reps.push_back(succ.state);
      metas.push_back(
          Meta{idx, TraceStep{succ.step, succ.text, succ.node, succ.port}});
      depths.push_back(depth + 1);
      frontier.push_back(nidx);
      ++result.states;
    }
  }

  result.complete = !budget_hit && !result.has_violation;
  return result;
}

}  // namespace wavesim::model
