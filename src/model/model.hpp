// Abstracted protocol model for bounded model checking (wavecheck --bmc).
//
// The model keeps exactly the state the Theorem 1-4 premises talk about --
// per-channel reservation/ack status and per-probe search state -- and
// abstracts everything else (flit timing, link arbitration, the wormhole
// data plane). Each transition is one atomic protocol step of one job:
// launch, one MB-m probe decision (via the *same* pcs::decide the concrete
// control plane calls, so model and runtime cannot drift on the linchpin
// rule), one ack/teardown hop, one cache eviction or release. The explorer
// (explorer.hpp) enumerates every interleaving of those steps over a small
// fixed job set, which is what the runtime-skipped wavecheck rows need:
// they are quantified over schedules, not over time.
//
// Fidelity notes, mapped to the concrete control plane:
//  * channel states Free / Reserved(job) / Acked(job) mirror ChannelStatus
//    kFree / kReservedByProbe / kBusyCircuit(+ack_returned); a circuit's
//    hops commit Reserved -> Acked one hop per ack step, dest -> src, like
//    the travelling ack flit;
//  * probe views map exactly as ControlPlane::build_view does (Reserved ->
//    kBusyPending, Acked -> kBusyEstablished, history/mesh-edge ->
//    kUnusable);
//  * attempts reconstruct the concrete SetupSequencer (same variant
//    semantics, same (sum of coords) mod k InitialSwitch staggering);
//  * Force-wait parks the job and demands a release from the owner, which
//    honors it only once established -- the teardown then frees hops
//    src -> dest like the travelling teardown flit;
//  * a full circuit-cache evicts the LRU-style victim by demanding its
//    release, as NodeInterface does when allocating an entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcs/mbm.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::model {

/// One circuit-setup job: the model explores every interleaving of the
/// protocol steps of a fixed job set.
struct Job {
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;

  friend bool operator==(const Job&, const Job&) = default;
};

enum class Phase : std::uint8_t {
  kIdle,          ///< not launched yet (may be blocked on the cache)
  kProbing,       ///< MB-m probe searching
  kWaiting,       ///< Force probe parked on wait_port
  kAckWalk,       ///< delivered; ack committing hops dest -> src
  kEstablished,   ///< circuit up (CLRP: stays cached until evicted/released)
  kTearWalk,      ///< teardown freeing hops src -> dest
  kDone,          ///< circuit used and torn down
  kDoneFallback,  ///< setup exhausted; message went wormhole
};

const char* to_string(Phase phase) noexcept;

/// One reserved hop of a probe/circuit path.
struct HopRec {
  NodeId from = kInvalidNode;
  PortId out_port = kInvalidPort;
  std::int8_t misroutes_before = 0;

  friend bool operator==(const HopRec&, const HopRec&) = default;
};

struct JobState {
  Phase phase = Phase::kIdle;
  std::int8_t attempts = 0;  ///< SetupSequencer advances made
  NodeId node = kInvalidNode;
  PortId arrival_port = kInvalidPort;
  std::int8_t misroutes = 0;
  PortId wait_port = kInvalidPort;
  bool release_demanded = false;
  std::int8_t ack_done = 0;   ///< hops committed, counted from the dest end
  std::int8_t tear_done = 0;  ///< hops freed, counted from the src end
  std::vector<HopRec> path;
  /// Per-node searched-port bitmask of the current attempt (MB-m history).
  std::vector<std::uint8_t> history;

  friend bool operator==(const JobState&, const JobState&) = default;
};

/// Full model state. channel[] holds, per (node, switch, port):
/// 0 = free, 1 + 2*j = reserved by job j's probe, 2 + 2*j = acked for job j.
struct State {
  std::vector<std::uint8_t> channel;
  std::vector<JobState> jobs;

  friend bool operator==(const State&, const State&) = default;
};

enum class StepKind : std::uint8_t {
  kStart,    ///< Idle -> Probing (launch the setup)
  kProbe,    ///< one MB-m decision (advance/deliver/wait/backtrack)
  kWait,     ///< parked probe re-decides or re-demands the release
  kAck,      ///< ack commits one hop
  kRelease,  ///< established circuit honors a demand / CARP releases
  kTear,     ///< teardown frees one hop
  kEvict,    ///< full cache demands release of an idle established victim
};

const char* to_string(StepKind kind) noexcept;

struct Step {
  std::uint8_t job = 0;
  StepKind kind = StepKind::kStart;

  friend bool operator==(const Step&, const Step&) = default;
};

/// One enabled transition with its successor state and any violation the
/// transition itself exposes (the force-waits-only-on-acked premise is a
/// property of decisions, so it is checked at the decision).
struct Successor {
  Step step;
  State state;
  std::string text;  ///< human-readable, e.g. "job1 probe advance n2 p0 s0"
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  std::string violation_row;  ///< empty, or the bmc-* row id refuted
  std::string violation_detail;
};

class ProtocolModel {
 public:
  /// `config` must satisfy bmc.hpp's bmc_supported(); `jobs` is the fixed
  /// job set to interleave (every src/dest must be a valid, distinct pair).
  ProtocolModel(const sim::SimConfig& config, std::vector<Job> jobs);

  const sim::SimConfig& config() const noexcept { return config_; }
  const topo::KAryNCube& topology() const noexcept { return topology_; }
  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  std::int32_t num_switches() const noexcept {
    return config_.router.wave_switches;
  }

  State initial_state() const;

  /// Every enabled transition from `s`. Deterministic and stable: at most
  /// one successor per (job, kind), emitted in job-major order.
  std::vector<Successor> successors(const State& s) const;

  /// Job indices of a wait-for cycle among parked probes (empty if none).
  /// Edges follow wait_port to the owning job of that channel.
  std::vector<std::int32_t> wait_cycle(const State& s) const;

  /// True when every job is terminally happy: done, fallen back, or an
  /// established circuit sitting idle in the cache with no release demand.
  bool terminal_ok(const State& s) const;

  /// Byte-stable encoding (the explorer's visited-set key).
  std::string encode(const State& s) const;

  /// Concrete InitialSwitch staggering (NodeInterface: sum of coords mod k).
  std::int32_t initial_switch(NodeId node) const;

  std::int32_t channel_slot(NodeId node, std::int32_t sw,
                            PortId port) const noexcept {
    return (node * num_switches() + sw) * topology_.num_ports() + port;
  }

 private:
  struct Attempt {
    std::int32_t switch_index = 0;
    bool force = false;
    bool exhausted = false;
  };
  Attempt attempt_of(const JobState& j, NodeId src) const;
  std::vector<pcs::PortView> build_view(const State& s, const JobState& j,
                                        std::int32_t sw) const;
  std::int32_t cache_used(const State& s, NodeId src) const;
  /// Apply one MB-m decision to job `ji` of `s` (shared by kProbe/kWait).
  /// Returns false if the decision changes nothing (step not enabled).
  bool apply_decision(Successor& out, const State& s, std::int32_t ji) const;

  sim::SimConfig config_;
  topo::KAryNCube topology_;
  std::vector<Job> jobs_;
};

}  // namespace wavesim::model
