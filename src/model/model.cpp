#include "model/model.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/protocols.hpp"

namespace wavesim::model {

namespace {

constexpr std::uint8_t kFree = 0;

std::uint8_t reserved_by(std::int32_t job) {
  return static_cast<std::uint8_t>(1 + 2 * job);
}
std::uint8_t acked_for(std::int32_t job) {
  return static_cast<std::uint8_t>(2 + 2 * job);
}
bool is_reserved(std::uint8_t c) { return c != kFree && (c - 1) % 2 == 0; }
bool is_acked(std::uint8_t c) { return c != kFree && (c - 1) % 2 == 1; }
std::int32_t owner_of(std::uint8_t c) { return (c - 1) / 2; }

bool active_phase(Phase p) {
  return p == Phase::kProbing || p == Phase::kWaiting ||
         p == Phase::kAckWalk || p == Phase::kEstablished ||
         p == Phase::kTearWalk;
}

}  // namespace

const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kIdle: return "idle";
    case Phase::kProbing: return "probing";
    case Phase::kWaiting: return "waiting";
    case Phase::kAckWalk: return "ack-walk";
    case Phase::kEstablished: return "established";
    case Phase::kTearWalk: return "tear-walk";
    case Phase::kDone: return "done";
    case Phase::kDoneFallback: return "done-fallback";
  }
  return "?";
}

const char* to_string(StepKind kind) noexcept {
  switch (kind) {
    case StepKind::kStart: return "start";
    case StepKind::kProbe: return "probe";
    case StepKind::kWait: return "wait";
    case StepKind::kAck: return "ack";
    case StepKind::kRelease: return "release";
    case StepKind::kTear: return "tear";
    case StepKind::kEvict: return "evict";
  }
  return "?";
}

ProtocolModel::ProtocolModel(const sim::SimConfig& config,
                             std::vector<Job> jobs)
    : config_(config),
      topology_(config.topology.radix, config.topology.torus),
      jobs_(std::move(jobs)) {
  config_.validate();
  if (config_.protocol.protocol == sim::ProtocolKind::kWormholeOnly) {
    throw std::invalid_argument("ProtocolModel: wormhole baseline has no "
                                "probes or circuits to model");
  }
  if (jobs_.empty() || jobs_.size() > 8) {
    throw std::invalid_argument("ProtocolModel: need 1..8 jobs");
  }
  for (const Job& job : jobs_) {
    if (job.src < 0 || job.src >= topology_.num_nodes() || job.dest < 0 ||
        job.dest >= topology_.num_nodes() || job.src == job.dest) {
      throw std::invalid_argument("ProtocolModel: bad job endpoints");
    }
  }
}

std::int32_t ProtocolModel::initial_switch(NodeId node) const {
  std::int32_t sum = 0;
  for (auto c : topology_.coord_of(node)) sum += c;
  return sum % num_switches();
}

State ProtocolModel::initial_state() const {
  State s;
  s.channel.assign(static_cast<std::size_t>(topology_.num_nodes()) *
                       num_switches() * topology_.num_ports(),
                   kFree);
  s.jobs.resize(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    s.jobs[j].history.assign(static_cast<std::size_t>(topology_.num_nodes()),
                             0);
  }
  return s;
}

ProtocolModel::Attempt ProtocolModel::attempt_of(const JobState& j,
                                                 NodeId src) const {
  const auto mode = config_.protocol.protocol == sim::ProtocolKind::kCarp
                        ? core::SetupSequencer::Mode::kCarp
                        : core::SetupSequencer::Mode::kClrp;
  core::SetupSequencer seq(mode, config_.protocol.clrp_variant,
                           num_switches(), initial_switch(src));
  bool alive = true;
  for (std::int8_t i = 0; i < j.attempts && alive; ++i) alive = seq.advance();
  Attempt att;
  att.exhausted = !alive || seq.exhausted();
  if (!att.exhausted) {
    const core::SetupAttempt cur = seq.current();
    att.switch_index = cur.switch_index;
    att.force = cur.force;
  }
  return att;
}

std::vector<pcs::PortView> ProtocolModel::build_view(const State& s,
                                                     const JobState& j,
                                                     std::int32_t sw) const {
  std::vector<pcs::PortView> view(
      static_cast<std::size_t>(topology_.num_ports()));
  for (PortId p = 0; p < topology_.num_ports(); ++p) {
    if (!topology_.has_neighbor(j.node, p) ||
        (j.history[static_cast<std::size_t>(j.node)] >> p) & 1) {
      view[p] = pcs::PortView::kUnusable;
      continue;
    }
    const std::uint8_t c = s.channel[channel_slot(j.node, sw, p)];
    if (c == kFree) {
      view[p] = pcs::PortView::kAvailable;
    } else if (is_acked(c)) {
      view[p] = pcs::PortView::kBusyEstablished;
    } else {
      view[p] = pcs::PortView::kBusyPending;
    }
  }
  return view;
}

std::int32_t ProtocolModel::cache_used(const State& s, NodeId src) const {
  std::int32_t used = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].src == src && active_phase(s.jobs[j].phase)) ++used;
  }
  return used;
}

bool ProtocolModel::apply_decision(Successor& out, const State& s,
                                   std::int32_t ji) const {
  const Job& job = jobs_[static_cast<std::size_t>(ji)];
  JobState& j = out.state.jobs[static_cast<std::size_t>(ji)];
  const Attempt att = attempt_of(j, job.src);
  if (att.exhausted) {
    throw std::logic_error("model: probing job with exhausted sequencer");
  }
  const std::int32_t sw = att.switch_index;
  const auto view = build_view(s, j, sw);
  const pcs::MbmDecision decision = pcs::decide(
      topology_, j.node, job.dest, view, j.arrival_port, j.misroutes,
      config_.protocol.max_misroutes, att.force,
      config_.protocol.mutate_force_unacked);

  std::ostringstream text;
  text << "job" << ji << ' ' << to_string(out.step.kind);
  out.node = j.node;

  switch (decision.action) {
    case pcs::MbmAction::kDeliver: {
      j.phase = Phase::kAckWalk;
      j.ack_done = 0;
      j.wait_port = kInvalidPort;
      text << " deliver at n" << j.node << " (path " << j.path.size()
           << " hops, sw " << sw << ')';
      break;
    }
    case pcs::MbmAction::kAdvance: {
      const PortId p = decision.port;
      out.port = p;
      out.state.channel[channel_slot(j.node, sw, p)] = reserved_by(ji);
      j.history[static_cast<std::size_t>(j.node)] |=
          static_cast<std::uint8_t>(1u << p);
      j.path.push_back(HopRec{j.node, p, j.misroutes});
      if (decision.misroute) ++j.misroutes;
      text << (decision.misroute ? " misroute" : " advance") << " n" << j.node
           << " p" << static_cast<int>(p) << " s" << sw;
      j.node = topology_.neighbor(j.node, p);
      j.arrival_port = topo::KAryNCube::opposite(p);
      j.phase = Phase::kProbing;
      j.wait_port = kInvalidPort;
      break;
    }
    case pcs::MbmAction::kWaitForce: {
      const PortId p = decision.port;
      out.port = p;
      const std::uint8_t c = s.channel[channel_slot(j.node, sw, p)];
      if (c == kFree) {
        throw std::logic_error("model: force-wait on a free channel");
      }
      const std::int32_t victim = owner_of(c);
      const bool was_waiting_here =
          j.phase == Phase::kWaiting && j.wait_port == p;
      JobState& vj = out.state.jobs[static_cast<std::size_t>(victim)];
      const bool demand_new = !vj.release_demanded;
      if (was_waiting_here && !demand_new) return false;  // no state change
      j.phase = Phase::kWaiting;
      j.wait_port = p;
      vj.release_demanded = true;
      text << " force-wait n" << j.node << " p" << static_cast<int>(p)
           << " s" << sw << " on job" << victim
           << (is_acked(c) ? " (acked)" : " (PENDING)");
      if (!is_acked(c)) {
        // Theorem 1's decision-time premise, refuted: the Force probe
        // chose to wait on a channel whose circuit has not acked.
        out.violation_row = "bmc-force-waits-only-on-acked";
        std::ostringstream why;
        why << "job" << ji << " (" << job.src << "->" << job.dest
            << ") force-waits at node " << j.node << " port "
            << static_cast<int>(p) << " switch " << sw
            << " on a channel reserved by job" << victim
            << "'s still-establishing circuit";
        out.violation_detail = why.str();
      }
      break;
    }
    case pcs::MbmAction::kBacktrack: {
      j.wait_port = kInvalidPort;
      if (j.path.empty()) {
        // Attempt exhausted at the source: next attempt or give up.
        ++j.attempts;
        j.history.assign(j.history.size(), 0);
        j.misroutes = 0;
        j.node = job.src;
        j.arrival_port = kInvalidPort;
        const Attempt next = attempt_of(j, job.src);
        if (!next.exhausted) {
          j.phase = Phase::kProbing;
          text << " next-attempt " << static_cast<int>(j.attempts);
        } else if (config_.protocol.pcs_only) {
          // pcs_only never falls back: restart the whole sequence.
          j.attempts = 0;
          j.phase = Phase::kProbing;
          text << " pcs-only-restart";
        } else {
          j.phase = Phase::kDoneFallback;
          text << " exhausted -> wormhole";
        }
        break;
      }
      const HopRec hop = j.path.back();
      j.path.pop_back();
      out.state.channel[channel_slot(hop.from, sw, hop.out_port)] = kFree;
      j.node = hop.from;
      j.misroutes = hop.misroutes_before;
      j.arrival_port = j.path.empty()
                           ? kInvalidPort
                           : topo::KAryNCube::opposite(j.path.back().out_port);
      j.phase = Phase::kProbing;
      out.port = hop.out_port;
      text << " backtrack to n" << j.node;
      break;
    }
  }
  out.text = text.str();
  return true;
}

std::vector<Successor> ProtocolModel::successors(const State& s) const {
  std::vector<Successor> out;
  const std::int32_t cache = config_.protocol.circuit_cache_entries;
  for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
    const Job& job = jobs_[ji];
    const JobState& j = s.jobs[ji];
    switch (j.phase) {
      case Phase::kIdle: {
        if (cache_used(s, job.src) < cache) {
          Successor succ;
          succ.step = Step{static_cast<std::uint8_t>(ji), StepKind::kStart};
          succ.state = s;
          JobState& nj = succ.state.jobs[ji];
          nj.phase = Phase::kProbing;
          nj.node = job.src;
          nj.arrival_port = kInvalidPort;
          nj.misroutes = 0;
          nj.attempts = 0;
          succ.node = job.src;
          std::ostringstream text;
          text << "job" << ji << " start " << job.src << "->" << job.dest;
          succ.text = text.str();
          out.push_back(std::move(succ));
        } else {
          // Cache full: demand release of an idle established same-source
          // victim, as the concrete interface's entry allocation does.
          for (std::size_t v = 0; v < jobs_.size(); ++v) {
            if (jobs_[v].src != job.src) continue;
            if (s.jobs[v].phase != Phase::kEstablished ||
                s.jobs[v].release_demanded) {
              continue;
            }
            Successor succ;
            succ.step = Step{static_cast<std::uint8_t>(ji), StepKind::kEvict};
            succ.state = s;
            succ.state.jobs[v].release_demanded = true;
            succ.node = job.src;
            std::ostringstream text;
            text << "job" << ji << " evict job" << v << " from node "
                 << job.src << "'s cache";
            succ.text = text.str();
            out.push_back(std::move(succ));
            break;  // one deterministic victim (lowest job index)
          }
        }
        break;
      }
      case Phase::kProbing:
      case Phase::kWaiting: {
        Successor succ;
        succ.step = Step{static_cast<std::uint8_t>(ji),
                         j.phase == Phase::kProbing ? StepKind::kProbe
                                                    : StepKind::kWait};
        succ.state = s;
        if (apply_decision(succ, s, static_cast<std::int32_t>(ji))) {
          out.push_back(std::move(succ));
        }
        break;
      }
      case Phase::kAckWalk: {
        Successor succ;
        succ.step = Step{static_cast<std::uint8_t>(ji), StepKind::kAck};
        succ.state = s;
        JobState& nj = succ.state.jobs[ji];
        const Attempt att = attempt_of(nj, job.src);
        const std::size_t idx =
            nj.path.size() - 1 - static_cast<std::size_t>(nj.ack_done);
        const HopRec& hop = nj.path[idx];
        const std::int32_t slot =
            channel_slot(hop.from, att.switch_index, hop.out_port);
        if (succ.state.channel[slot] !=
            reserved_by(static_cast<std::int32_t>(ji))) {
          throw std::logic_error("model: ack hop not reserved by its job");
        }
        succ.state.channel[slot] = acked_for(static_cast<std::int32_t>(ji));
        ++nj.ack_done;
        succ.node = hop.from;
        succ.port = hop.out_port;
        std::ostringstream text;
        text << "job" << ji << " ack hop n" << hop.from << " p"
             << static_cast<int>(hop.out_port);
        if (nj.ack_done == static_cast<std::int8_t>(nj.path.size())) {
          nj.phase = Phase::kEstablished;
          text << " -> established";
        }
        succ.text = text.str();
        out.push_back(std::move(succ));
        break;
      }
      case Phase::kEstablished: {
        // CLRP keeps the circuit cached until a release is demanded; CARP
        // releases explicitly after the transfer.
        const bool carp =
            config_.protocol.protocol == sim::ProtocolKind::kCarp;
        if (!j.release_demanded && !carp) break;
        Successor succ;
        succ.step = Step{static_cast<std::uint8_t>(ji), StepKind::kRelease};
        succ.state = s;
        JobState& nj = succ.state.jobs[ji];
        nj.phase = Phase::kTearWalk;
        nj.tear_done = 0;
        succ.node = job.src;
        std::ostringstream text;
        text << "job" << ji << " release -> teardown"
             << (j.release_demanded ? " (demanded)" : "");
        succ.text = text.str();
        out.push_back(std::move(succ));
        break;
      }
      case Phase::kTearWalk: {
        Successor succ;
        succ.step = Step{static_cast<std::uint8_t>(ji), StepKind::kTear};
        succ.state = s;
        JobState& nj = succ.state.jobs[ji];
        const Attempt att = attempt_of(nj, job.src);
        const HopRec& hop = nj.path[static_cast<std::size_t>(nj.tear_done)];
        const std::int32_t slot =
            channel_slot(hop.from, att.switch_index, hop.out_port);
        succ.node = hop.from;
        succ.port = hop.out_port;
        std::ostringstream text;
        text << "job" << ji << " teardown hop n" << hop.from << " p"
             << static_cast<int>(hop.out_port);
        if (succ.state.channel[slot] !=
            acked_for(static_cast<std::int32_t>(ji))) {
          // The teardown premise: a tearing-down circuit still owns every
          // hop it is about to free (releases drain unconditionally).
          succ.violation_row = "bmc-teardown-drains";
          std::ostringstream why;
          why << "job" << ji << " teardown at node " << hop.from << " port "
              << static_cast<int>(hop.out_port)
              << " found a channel it does not own";
          succ.violation_detail = why.str();
        } else {
          succ.state.channel[slot] = kFree;
        }
        ++nj.tear_done;
        if (nj.tear_done == static_cast<std::int8_t>(nj.path.size())) {
          nj.phase = Phase::kDone;
          nj.release_demanded = false;
          nj.path.clear();
          nj.ack_done = 0;
          nj.tear_done = 0;
          nj.node = kInvalidNode;
          nj.arrival_port = kInvalidPort;
          nj.history.assign(nj.history.size(), 0);
          text << " -> done";
        }
        succ.text = text.str();
        out.push_back(std::move(succ));
        break;
      }
      case Phase::kDone:
      case Phase::kDoneFallback:
        break;
    }
  }
  return out;
}

std::vector<std::int32_t> ProtocolModel::wait_cycle(const State& s) const {
  const std::int32_t n = static_cast<std::int32_t>(jobs_.size());
  // next[j] = job whose channel j waits on, or -1.
  std::vector<std::int32_t> next(static_cast<std::size_t>(n), -1);
  for (std::int32_t j = 0; j < n; ++j) {
    const JobState& js = s.jobs[static_cast<std::size_t>(j)];
    if (js.phase != Phase::kWaiting) continue;
    const Attempt att = attempt_of(js, jobs_[static_cast<std::size_t>(j)].src);
    const std::uint8_t c =
        s.channel[channel_slot(js.node, att.switch_index, js.wait_port)];
    if (c != kFree) next[static_cast<std::size_t>(j)] = owner_of(c);
  }
  // Follow the unique outgoing edges; a revisit inside one walk is a cycle.
  for (std::int32_t start = 0; start < n; ++start) {
    std::vector<std::int32_t> mark(static_cast<std::size_t>(n), -1);
    std::vector<std::int32_t> walk;
    std::int32_t at = start;
    while (at >= 0 && mark[static_cast<std::size_t>(at)] < 0) {
      mark[static_cast<std::size_t>(at)] =
          static_cast<std::int32_t>(walk.size());
      walk.push_back(at);
      at = next[static_cast<std::size_t>(at)];
    }
    if (at >= 0) {
      return std::vector<std::int32_t>(
          walk.begin() + mark[static_cast<std::size_t>(at)], walk.end());
    }
  }
  return {};
}

bool ProtocolModel::terminal_ok(const State& s) const {
  const bool carp = config_.protocol.protocol == sim::ProtocolKind::kCarp;
  for (const JobState& j : s.jobs) {
    switch (j.phase) {
      case Phase::kDone:
      case Phase::kDoneFallback:
        continue;
      case Phase::kEstablished:
        // A CLRP circuit idling in the cache is a happy end state; CARP
        // always still owes its release (that transition stays enabled,
        // so a CARP job can never appear here in a successor-free state).
        if (!carp && !j.release_demanded) continue;
        return false;
      default:
        return false;
    }
  }
  return true;
}

std::string ProtocolModel::encode(const State& s) const {
  std::string out;
  out.reserve(s.channel.size() + s.jobs.size() * 24);
  out.append(reinterpret_cast<const char*>(s.channel.data()),
             s.channel.size());
  for (const JobState& j : s.jobs) {
    out.push_back(static_cast<char>(j.phase));
    out.push_back(static_cast<char>(j.attempts));
    out.push_back(static_cast<char>(j.node + 1));
    out.push_back(static_cast<char>(j.arrival_port + 1));
    out.push_back(static_cast<char>(j.misroutes));
    out.push_back(static_cast<char>(j.wait_port + 1));
    out.push_back(static_cast<char>(j.release_demanded ? 1 : 0));
    out.push_back(static_cast<char>(j.ack_done));
    out.push_back(static_cast<char>(j.tear_done));
    out.push_back(static_cast<char>(j.path.size()));
    for (const HopRec& hop : j.path) {
      out.push_back(static_cast<char>(hop.from + 1));
      out.push_back(static_cast<char>(hop.out_port + 1));
      out.push_back(static_cast<char>(hop.misroutes_before));
    }
    out.append(reinterpret_cast<const char*>(j.history.data()),
               j.history.size());
  }
  return out;
}

}  // namespace wavesim::model
