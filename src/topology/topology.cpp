#include "topology/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace wavesim::topo {

KAryNCube::KAryNCube(std::vector<std::int32_t> radix, bool torus)
    : radix_(std::move(radix)), torus_(torus) {
  if (radix_.empty()) {
    throw std::invalid_argument("KAryNCube: need at least one dimension");
  }
  std::int64_t n = 1;
  for (auto r : radix_) {
    if (r < 2) throw std::invalid_argument("KAryNCube: radix must be >= 2");
    n *= r;
    if (n > (1 << 24)) {
      throw std::invalid_argument("KAryNCube: network too large");
    }
  }
  num_nodes_ = static_cast<std::int32_t>(n);
  coords_.reserve(num_nodes_);
  for (NodeId id = 0; id < num_nodes_; ++id) {
    coords_.push_back(delinearize(id, radix_));
  }
}

NodeId KAryNCube::neighbor(NodeId node, PortId port) const {
  const std::int32_t d = dim_of(port);
  if (d < 0 || d >= num_dims()) throw std::out_of_range("neighbor: bad port");
  Coord c = coord_of(node);
  const std::int32_t step = is_positive(port) ? 1 : -1;
  std::int32_t v = c[d] + step;
  if (v < 0 || v >= radix_[d]) {
    if (!torus_) return kInvalidNode;
    v = (v + radix_[d]) % radix_[d];
  }
  c[d] = v;
  return node_of(c);
}

std::vector<std::int32_t> KAryNCube::min_offsets(NodeId from, NodeId to) const {
  const Coord& a = coord_of(from);
  const Coord& b = coord_of(to);
  std::vector<std::int32_t> off(radix_.size(), 0);
  for (std::size_t d = 0; d < radix_.size(); ++d) {
    std::int32_t delta = b[d] - a[d];
    if (torus_) {
      const std::int32_t r = radix_[d];
      // Normalize into (-r/2, r/2]; ties (|delta| == r/2) go positive.
      if (delta > r / 2) delta -= r;
      else if (delta < -(r - 1) / 2) delta += r;
    }
    off[d] = delta;
  }
  return off;
}

std::int32_t KAryNCube::distance(NodeId from, NodeId to) const {
  std::int32_t sum = 0;
  for (auto o : min_offsets(from, to)) sum += std::abs(o);
  return sum;
}

std::vector<PortId> KAryNCube::minimal_ports(NodeId from, NodeId to) const {
  std::vector<PortId> ports;
  const auto off = min_offsets(from, to);
  for (std::size_t d = 0; d < off.size(); ++d) {
    if (off[d] > 0) ports.push_back(port_of(static_cast<std::int32_t>(d), true));
    else if (off[d] < 0) ports.push_back(port_of(static_cast<std::int32_t>(d), false));
  }
  return ports;
}

bool KAryNCube::crosses_dateline(NodeId node, PortId port) const {
  if (!torus_) return false;
  const std::int32_t d = dim_of(port);
  const std::int32_t v = coord_of(node)[d];
  return is_positive(port) ? (v == radix_[d] - 1) : (v == 0);
}

}  // namespace wavesim::topo
