#include "topology/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace wavesim::topo {

KAryNCube::KAryNCube(std::vector<std::int32_t> radix, bool torus)
    : radix_(std::move(radix)), torus_(torus) {
  if (radix_.empty()) {
    throw std::invalid_argument("KAryNCube: need at least one dimension");
  }
  std::int64_t n = 1;
  for (auto r : radix_) {
    if (r < 2) throw std::invalid_argument("KAryNCube: radix must be >= 2");
    n *= r;
    if (n > (1 << 24)) {
      throw std::invalid_argument("KAryNCube: network too large");
    }
  }
  num_nodes_ = static_cast<std::int32_t>(n);
  coords_.reserve(num_nodes_);
  coord_flat_.reserve(static_cast<std::size_t>(num_nodes_) * radix_.size());
  for (NodeId id = 0; id < num_nodes_; ++id) {
    coords_.push_back(delinearize(id, radix_));
    coord_flat_.insert(coord_flat_.end(), coords_.back().begin(),
                       coords_.back().end());
  }
  neighbors_.resize(static_cast<std::size_t>(num_channels()), kInvalidNode);
  for (NodeId id = 0; id < num_nodes_; ++id) {
    for (PortId port = 0; port < num_ports(); ++port) {
      const std::int32_t d = dim_of(port);
      Coord c = coords_[id];
      std::int32_t v = c[d] + (is_positive(port) ? 1 : -1);
      if (v < 0 || v >= radix_[d]) {
        if (!torus_) continue;  // mesh boundary: stays kInvalidNode
        v = (v + radix_[d]) % radix_[d];
      }
      c[d] = v;
      neighbors_[channel_index(id, port)] = node_of(c);
    }
  }
}

std::vector<std::int32_t> KAryNCube::min_offsets(NodeId from, NodeId to) const {
  std::vector<std::int32_t> off(radix_.size(), 0);
  for (std::size_t d = 0; d < radix_.size(); ++d) {
    off[d] = min_offset(from, to, static_cast<std::int32_t>(d));
  }
  return off;
}

std::int32_t KAryNCube::distance(NodeId from, NodeId to) const {
  std::int32_t sum = 0;
  for (auto o : min_offsets(from, to)) sum += std::abs(o);
  return sum;
}

std::vector<PortId> KAryNCube::minimal_ports(NodeId from, NodeId to) const {
  std::vector<PortId> ports;
  const auto off = min_offsets(from, to);
  for (std::size_t d = 0; d < off.size(); ++d) {
    if (off[d] > 0) ports.push_back(port_of(static_cast<std::int32_t>(d), true));
    else if (off[d] < 0) ports.push_back(port_of(static_cast<std::int32_t>(d), false));
  }
  return ports;
}

bool KAryNCube::crosses_dateline(NodeId node, PortId port) const {
  if (!torus_) return false;
  const std::int32_t d = dim_of(port);
  const std::int32_t v = coord_of(node)[d];
  return is_positive(port) ? (v == radix_[d] - 1) : (v == 0);
}

}  // namespace wavesim::topo
