#include "topology/coord.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace wavesim::topo {

NodeId linearize(const Coord& coord, const std::vector<std::int32_t>& radix) {
  if (coord.size() != radix.size()) {
    throw std::invalid_argument("linearize: dimension mismatch");
  }
  NodeId node = 0;
  std::int32_t stride = 1;
  for (std::size_t d = 0; d < radix.size(); ++d) {
    if (coord[d] < 0 || coord[d] >= radix[d]) {
      throw std::out_of_range("linearize: coordinate out of range");
    }
    node += coord[d] * stride;
    stride *= radix[d];
  }
  return node;
}

Coord delinearize(NodeId node, const std::vector<std::int32_t>& radix) {
  Coord coord(radix.size(), 0);
  for (std::size_t d = 0; d < radix.size(); ++d) {
    coord[d] = node % radix[d];
    node /= radix[d];
  }
  if (node != 0) throw std::out_of_range("delinearize: node out of range");
  return coord;
}

std::string to_string(const Coord& coord) {
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < coord.size(); ++d) {
    if (d != 0) os << ", ";
    os << coord[d];
  }
  os << ")";
  return os.str();
}

}  // namespace wavesim::topo
