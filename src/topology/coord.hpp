// Multi-dimensional coordinates and their linearization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::topo {

/// Per-dimension coordinate of a node; size == number of dimensions.
using Coord = std::vector<std::int32_t>;

/// Row-major style linearization: dimension 0 varies fastest.
NodeId linearize(const Coord& coord, const std::vector<std::int32_t>& radix);

/// Inverse of linearize().
Coord delinearize(NodeId node, const std::vector<std::int32_t>& radix);

/// "(x, y, z)" rendering for diagnostics.
std::string to_string(const Coord& coord);

}  // namespace wavesim::topo
