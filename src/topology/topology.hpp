// k-ary n-cube topology (mesh or torus). Hypercube = 2-ary n-cube.
//
// Port numbering per node: port 2*d   = dimension d, positive direction
//                          port 2*d+1 = dimension d, negative direction
// A flit leaving node A through port p arrives at neighbor(A, p) on input
// port opposite(p). Injection/ejection ports are a router concern and do
// not appear here.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/types.hpp"
#include "topology/coord.hpp"

namespace wavesim::topo {

class KAryNCube {
 public:
  KAryNCube(std::vector<std::int32_t> radix, bool torus);

  std::int32_t num_nodes() const noexcept { return num_nodes_; }
  std::int32_t num_dims() const noexcept {
    return static_cast<std::int32_t>(radix_.size());
  }
  std::int32_t radix(std::int32_t dim) const { return radix_.at(dim); }
  const std::vector<std::int32_t>& radices() const noexcept { return radix_; }
  bool torus() const noexcept { return torus_; }
  /// Network ports per node (2 per dimension).
  std::int32_t num_ports() const noexcept { return 2 * num_dims(); }

  static constexpr PortId port_of(std::int32_t dim, bool positive) noexcept {
    return 2 * dim + (positive ? 0 : 1);
  }
  static constexpr std::int32_t dim_of(PortId port) noexcept { return port / 2; }
  static constexpr bool is_positive(PortId port) noexcept { return (port % 2) == 0; }
  static constexpr PortId opposite(PortId port) noexcept { return port ^ 1; }

  const Coord& coord_of(NodeId node) const { return coords_.at(node); }
  NodeId node_of(const Coord& coord) const { return linearize(coord, radix_); }

  /// Neighbor through `port`, or kInvalidNode at a mesh boundary.
  /// Precomputed per channel, so this is a table load.
  NodeId neighbor(NodeId node, PortId port) const {
    if (port < 0 || port >= num_ports()) {
      throw std::out_of_range("neighbor: bad port");
    }
    return neighbors_.at(channel_index(node, port));
  }
  bool has_neighbor(NodeId node, PortId port) const {
    return neighbor(node, port) != kInvalidNode;
  }

  /// Signed minimal offset from `from` to `to` along each dimension
  /// (torus picks the shorter way; exact ties go the positive way).
  std::vector<std::int32_t> min_offsets(NodeId from, NodeId to) const;
  /// One dimension of min_offsets(), allocation-free (flat coordinate
  /// table, no nested vector hop).
  std::int32_t min_offset(NodeId from, NodeId to, std::int32_t dim) const {
    const std::size_t dims = radix_.size();
    std::int32_t delta = coord_flat_.at(to * dims + dim) -
                         coord_flat_.at(from * dims + dim);
    if (torus_) {
      const std::int32_t r = radix_[dim];
      // Normalize into (-r/2, r/2]; ties (|delta| == r/2) go positive.
      if (delta > r / 2) delta -= r;
      else if (delta < -(r - 1) / 2) delta += r;
    }
    return delta;
  }

  /// Minimal hop distance.
  std::int32_t distance(NodeId from, NodeId to) const;

  /// Ports that strictly reduce distance to `to` (empty iff from == to).
  std::vector<PortId> minimal_ports(NodeId from, NodeId to) const;

  /// True if traversing `port` out of `node` crosses the torus wraparound
  /// ("dateline") of that dimension; always false on a mesh. Used for
  /// deadlock-free VC-class assignment in torus DOR.
  bool crosses_dateline(NodeId node, PortId port) const;

  /// Dense id of the unidirectional channel leaving `node` through `port`,
  /// in [0, num_nodes * num_ports). Valid even at mesh boundaries (such
  /// channels simply never carry traffic).
  std::int32_t channel_index(NodeId node, PortId port) const noexcept {
    return node * num_ports() + port;
  }
  std::int32_t num_channels() const noexcept {
    return num_nodes_ * num_ports();
  }

 private:
  std::vector<std::int32_t> radix_;
  bool torus_;
  std::int32_t num_nodes_;
  std::vector<Coord> coords_;  // precomputed coordinate of every node
  std::vector<std::int32_t> coord_flat_;  // same, node-major flat
  std::vector<NodeId> neighbors_;  // precomputed, indexed by channel_index
};

}  // namespace wavesim::topo
