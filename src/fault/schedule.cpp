#include "fault/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace wavesim::fault {

namespace {

[[noreturn]] void bad(const std::string& why) {
  throw std::runtime_error("faults schedule: " + why);
}

/// Strict member walk: every key must be consumed by `allowed`.
void reject_unknown_keys(const sim::JsonValue& obj,
                         std::initializer_list<const char*> allowed,
                         const char* where) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const char* name : allowed) ok = ok || key == name;
    if (!ok) bad(std::string("unknown key \"") + key + "\" in " + where);
  }
}

std::int64_t require_int(const sim::JsonValue& obj, const char* key,
                         const char* where) {
  const sim::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    bad(std::string(where) + " needs numeric \"" + key + "\"");
  }
  return v->as_int();
}

std::int64_t optional_int(const sim::JsonValue& obj, const char* key,
                          std::int64_t fallback, const char* where) {
  const sim::JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    bad(std::string(where) + ": \"" + key + "\" must be a number");
  }
  return v->as_int();
}

double optional_num(const sim::JsonValue& obj, const char* key,
                    double fallback, const char* where) {
  const sim::JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    bad(std::string(where) + ": \"" + key + "\" must be a number");
  }
  return v->as_number();
}

Cycle require_cycle(const sim::JsonValue& obj, const char* key,
                    const char* where) {
  const std::int64_t v = require_int(obj, key, where);
  if (v < 0) bad(std::string(where) + ": \"" + key + "\" must be >= 0");
  return static_cast<Cycle>(v);
}

Cycle optional_cycle(const sim::JsonValue& obj, const char* key,
                     Cycle fallback, const char* where) {
  const std::int64_t v =
      optional_int(obj, key, static_cast<std::int64_t>(fallback), where);
  if (v < 0) bad(std::string(where) + ": \"" + key + "\" must be >= 0");
  return static_cast<Cycle>(v);
}

}  // namespace

sim::FaultConfig faults_from_json(const sim::JsonValue& doc) {
  if (!doc.is_object()) bad("document must be an object");
  reject_unknown_keys(doc, {"schema", "events", "storm", "churn", "dv"},
                      "document");
  const sim::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kFaultsSchema) {
    bad(std::string("schema must be \"") + kFaultsSchema + "\"");
  }

  sim::FaultConfig faults;
  if (const sim::JsonValue* events = doc.find("events")) {
    if (!events->is_array()) bad("\"events\" must be an array");
    for (const sim::JsonValue& ev : events->elements()) {
      if (!ev.is_object()) bad("every event must be an object");
      reject_unknown_keys(ev, {"at", "kind", "node", "port"}, "event");
      sim::FaultEvent out;
      out.at = require_cycle(ev, "at", "event");
      const sim::JsonValue* kind = ev.find("kind");
      if (kind == nullptr || !kind->is_string() ||
          !sim::from_string(kind->as_string(), out.kind)) {
        bad("event \"kind\" must be one of link-down, link-up, node-down, "
            "node-up");
      }
      out.node = static_cast<NodeId>(require_int(ev, "node", "event"));
      const bool link_event = out.kind == sim::FaultEventKind::kLinkDown ||
                              out.kind == sim::FaultEventKind::kLinkUp;
      if (link_event) {
        out.port = static_cast<PortId>(require_int(ev, "port", "event"));
      } else if (ev.find("port") != nullptr) {
        bad("node events take no \"port\"");
      }
      faults.events.push_back(out);
    }
  }

  if (const sim::JsonValue* storm = doc.find("storm")) {
    if (!storm->is_object()) bad("\"storm\" must be an object");
    reject_unknown_keys(*storm, {"at", "fraction", "repair_after"}, "storm");
    faults.storm.at = optional_cycle(*storm, "at", 0, "storm");
    faults.storm.fraction = optional_num(*storm, "fraction", 0.0, "storm");
    faults.storm.repair_after =
        optional_cycle(*storm, "repair_after", 0, "storm");
  }

  if (const sim::JsonValue* churn = doc.find("churn")) {
    if (!churn->is_object()) bad("\"churn\" must be an object");
    reject_unknown_keys(*churn, {"rate", "from", "until", "mean_repair"},
                        "churn");
    faults.churn.rate = optional_num(*churn, "rate", 0.0, "churn");
    faults.churn.from = optional_cycle(*churn, "from", 0, "churn");
    faults.churn.until = optional_cycle(*churn, "until", 0, "churn");
    faults.churn.mean_repair =
        optional_cycle(*churn, "mean_repair", 0, "churn");
  }

  if (const sim::JsonValue* dv = doc.find("dv")) {
    if (!dv->is_object()) bad("\"dv\" must be an object");
    reject_unknown_keys(*dv,
                        {"advert_period", "timeout_periods", "hop_cycles"},
                        "dv");
    faults.dv.advert_period = optional_cycle(
        *dv, "advert_period", faults.dv.advert_period, "dv");
    faults.dv.timeout_periods = static_cast<std::int32_t>(optional_int(
        *dv, "timeout_periods", faults.dv.timeout_periods, "dv"));
    faults.dv.hop_cycles = static_cast<std::int32_t>(
        optional_int(*dv, "hop_cycles", faults.dv.hop_cycles, "dv"));
  }

  if (!faults.dynamic()) {
    bad("schedule declares no fault source (events, storm or churn)");
  }
  return faults;
}

sim::JsonValue faults_to_json(const sim::FaultConfig& faults) {
  sim::JsonValue events = sim::JsonValue::array();
  for (const sim::FaultEvent& e : faults.events) {
    sim::JsonValue ev = sim::JsonValue::object();
    ev.set("at", e.at).set("kind", to_string(e.kind)).set("node", e.node);
    if (e.kind == sim::FaultEventKind::kLinkDown ||
        e.kind == sim::FaultEventKind::kLinkUp) {
      ev.set("port", e.port);
    }
    events.push_back(std::move(ev));
  }
  return sim::JsonValue::object()
      .set("schema", kFaultsSchema)
      .set("events", std::move(events))
      .set("storm", sim::JsonValue::object()
                        .set("at", faults.storm.at)
                        .set("fraction", faults.storm.fraction)
                        .set("repair_after", faults.storm.repair_after))
      .set("churn", sim::JsonValue::object()
                        .set("rate", faults.churn.rate)
                        .set("from", faults.churn.from)
                        .set("until", faults.churn.until)
                        .set("mean_repair", faults.churn.mean_repair))
      .set("dv", sim::JsonValue::object()
                     .set("advert_period", faults.dv.advert_period)
                     .set("timeout_periods", faults.dv.timeout_periods)
                     .set("hop_cycles", faults.dv.hop_cycles));
}

sim::FaultConfig load_faults_file(const std::string& path) {
  return faults_from_json(sim::read_json_file(path));
}

std::vector<sim::FaultEvent> canonical_links(
    const topo::KAryNCube& topology) {
  std::vector<sim::FaultEvent> links;
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    for (PortId p = 0; p < topology.num_ports(); p += 2) {
      if (topology.neighbor(n, p) == kInvalidNode) continue;  // mesh edge
      sim::FaultEvent link;
      link.node = n;
      link.port = p;
      links.push_back(link);
    }
  }
  return links;
}

namespace {

/// Normalize a link named from either endpoint to its canonical
/// (positive-port) direction.
void canonicalize(const topo::KAryNCube& topology, NodeId& node,
                  PortId& port) {
  if (!topo::KAryNCube::is_positive(port)) {
    node = topology.neighbor(node, port);
    port = topo::KAryNCube::opposite(port);
  }
}

void push_link(std::vector<sim::FaultEvent>& out, Cycle at,
               sim::FaultEventKind kind, NodeId node, PortId port) {
  sim::FaultEvent e;
  e.at = at;
  e.kind = kind;
  e.node = node;
  e.port = port;
  out.push_back(e);
}

}  // namespace

std::vector<sim::FaultEvent> expand_schedule(const sim::FaultConfig& faults,
                                             const topo::KAryNCube& topology,
                                             sim::Rng rng) {
  std::vector<sim::FaultEvent> links = canonical_links(topology);
  std::vector<sim::FaultEvent> timeline;

  for (const sim::FaultEvent& e : faults.events) {
    switch (e.kind) {
      case sim::FaultEventKind::kLinkDown:
      case sim::FaultEventKind::kLinkUp: {
        NodeId node = e.node;
        PortId port = e.port;
        canonicalize(topology, node, port);
        push_link(timeline, e.at, e.kind, node, port);
        break;
      }
      case sim::FaultEventKind::kNodeDown:
      case sim::FaultEventKind::kNodeUp: {
        const sim::FaultEventKind kind =
            e.kind == sim::FaultEventKind::kNodeDown
                ? sim::FaultEventKind::kLinkDown
                : sim::FaultEventKind::kLinkUp;
        for (PortId p = 0; p < topology.num_ports(); ++p) {
          if (topology.neighbor(e.node, p) == kInvalidNode) continue;
          NodeId node = e.node;
          PortId port = p;
          canonicalize(topology, node, port);
          push_link(timeline, e.at, kind, node, port);
        }
        break;
      }
    }
  }

  if (faults.storm.fraction > 0.0 && !links.empty()) {
    // Fisher-Yates over the canonical links, first `count` entries fail.
    std::vector<sim::FaultEvent> shuffled = links;
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(shuffled[i], shuffled[j]);
    }
    auto count = static_cast<std::size_t>(
        faults.storm.fraction * static_cast<double>(shuffled.size()) + 0.5);
    count = std::max<std::size_t>(count, 1);
    count = std::min(count, shuffled.size());
    for (std::size_t i = 0; i < count; ++i) {
      push_link(timeline, faults.storm.at, sim::FaultEventKind::kLinkDown,
                shuffled[i].node, shuffled[i].port);
      if (faults.storm.repair_after > 0) {
        push_link(timeline, faults.storm.at + faults.storm.repair_after,
                  sim::FaultEventKind::kLinkUp, shuffled[i].node,
                  shuffled[i].port);
      }
    }
  }

  if (faults.churn.rate > 0.0 && !links.empty()) {
    for (Cycle t = faults.churn.from; t < faults.churn.until; ++t) {
      if (!rng.chance(faults.churn.rate)) continue;
      const sim::FaultEvent& link =
          links[static_cast<std::size_t>(rng.next_below(links.size()))];
      push_link(timeline, t, sim::FaultEventKind::kLinkDown, link.node,
                link.port);
      if (faults.churn.mean_repair > 0) {
        // Geometric repair delay with the configured mean, capped so one
        // unlucky draw cannot stretch the run unboundedly.
        const Cycle delay =
            1 + rng.geometric(
                    1.0 / static_cast<double>(faults.churn.mean_repair),
                    10 * faults.churn.mean_repair);
        push_link(timeline, t + delay, sim::FaultEventKind::kLinkUp,
                  link.node, link.port);
      }
    }
  }

  std::sort(timeline.begin(), timeline.end(),
            [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              if (a.port != b.port) return a.port < b.port;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return timeline;
}

}  // namespace wavesim::fault
