#include "fault/distvec.hpp"

#include <algorithm>

#include "snap/archive.hpp"

namespace wavesim::fault {

DistanceVector::DistanceVector(const topo::KAryNCube& topology,
                               const sim::DistanceVectorConfig& config,
                               std::int32_t hop_cycles)
    : topology_(topology), config_(config), hop_cycles_(hop_cycles),
      num_nodes_(topology.num_nodes()) {
  std::int32_t diameter = 0;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    diameter = std::max(diameter, topology_.distance(0, n));
  }
  infinity_ = std::max(16, diameter + 2);
  routes_.assign(static_cast<std::size_t>(num_nodes_) *
                     static_cast<std::size_t>(num_nodes_),
                 Route{infinity_, kInvalidPort, kCycleMax});
  alive_.assign(static_cast<std::size_t>(topology_.num_channels()), 1);
  dirty_.assign(routes_.size(), 0);
  node_dirty_.assign(static_cast<std::size_t>(num_nodes_), 0);
  min_deadline_.assign(static_cast<std::size_t>(num_nodes_), kCycleMax);
  converge_initial();
}

void DistanceVector::converge_initial() {
  // The network starts healthy: seed the tables with the converged state
  // directly (synchronous Bellman-Ford) instead of spending warmup cycles
  // on advertisements. Deadlines stay un-armed (kCycleMax) until the
  // plane first wakes -- see refresh_deadlines().
  for (NodeId n = 0; n < num_nodes_; ++n) {
    routes_[route_index(n, n)] = Route{0, kInvalidPort, kCycleMax};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n = 0; n < num_nodes_; ++n) {
      for (PortId p = 0; p < topology_.num_ports(); ++p) {
        const NodeId m = topology_.neighbor(n, p);
        if (m == kInvalidNode) continue;
        for (NodeId d = 0; d < num_nodes_; ++d) {
          const std::int32_t cand =
              std::min(infinity_, routes_[route_index(m, d)].metric + 1);
          Route& r = routes_[route_index(n, d)];
          if (cand < r.metric) {
            r.metric = cand;
            r.next_port = p;
            changed = true;
          }
        }
      }
    }
  }
}

void DistanceVector::mark_dirty(NodeId node, NodeId dest) {
  dirty_[route_index(node, dest)] = 1;
  node_dirty_[static_cast<std::size_t>(node)] = 1;
  any_dirty_ = true;
}

void DistanceVector::withdraw(NodeId node, NodeId dest, bool timeout) {
  Route& r = routes_[route_index(node, dest)];
  if (r.metric >= infinity_) return;
  r.metric = infinity_;
  r.next_port = kInvalidPort;
  r.deadline = kCycleMax;
  ++counters_.routes_withdrawn;
  if (timeout) ++counters_.route_timeouts;
  withdrawals_.emplace_back(node, dest);
  mark_dirty(node, dest);
}

void DistanceVector::link_down(NodeId node, PortId port, Cycle now) {
  (void)now;
  const NodeId peer = topology_.neighbor(node, port);
  if (peer == kInvalidNode) return;
  const auto fwd =
      static_cast<std::size_t>(topology_.channel_index(node, port));
  if (alive_[fwd] == 0) return;  // idempotent
  const PortId back = topo::KAryNCube::opposite(port);
  alive_[fwd] = 0;
  alive_[static_cast<std::size_t>(topology_.channel_index(peer, back))] = 0;
#ifdef WAVESIM_MUTATE_STALE_ROUTE
  // Mutation smoke (docs/TESTING.md): leave every route through the dead
  // link in place. simcheck's DV-vs-ground-truth oracle must catch the
  // stale table.
  return;
#else
  // Poison every route through the dead link at both endpoints; the
  // resulting withdrawals go out as triggered updates this same cycle.
  for (NodeId d = 0; d < num_nodes_; ++d) {
    if (routes_[route_index(node, d)].next_port == port) withdraw(node, d);
    if (routes_[route_index(peer, d)].next_port == back) withdraw(peer, d);
  }
#endif
}

void DistanceVector::link_up(NodeId node, PortId port, Cycle now) {
  (void)now;
  const NodeId peer = topology_.neighbor(node, port);
  if (peer == kInvalidNode) return;
  const auto fwd =
      static_cast<std::size_t>(topology_.channel_index(node, port));
  if (alive_[fwd] != 0) return;  // idempotent
  const PortId back = topo::KAryNCube::opposite(port);
  alive_[fwd] = 1;
  alive_[static_cast<std::size_t>(topology_.channel_index(peer, back))] = 1;
  // Reinstall the direct metric-1 routes (direct routes never expire; a
  // later failure withdraws them explicitly).
  Route& fwd_route = routes_[route_index(node, peer)];
  if (fwd_route.metric > 1) {
    fwd_route = Route{1, port, kCycleMax};
    mark_dirty(node, peer);
  }
  Route& back_route = routes_[route_index(peer, node)];
  if (back_route.metric > 1) {
    back_route = Route{1, back, kCycleMax};
    mark_dirty(peer, node);
  }
}

void DistanceVector::refresh_deadlines(Cycle now) {
  const Cycle deadline = now + timeout_cycles();
  for (NodeId n = 0; n < num_nodes_; ++n) {
    Cycle min_deadline = kCycleMax;
    for (NodeId d = 0; d < num_nodes_; ++d) {
      Route& r = routes_[route_index(n, d)];
      if (r.metric >= 2 && r.metric < infinity_) {
        r.deadline = deadline;
        min_deadline = std::min(min_deadline, deadline);
      }
    }
    min_deadline_[static_cast<std::size_t>(n)] = min_deadline;
  }
}

void DistanceVector::deliver(const Advert& advert, Cycle now) {
  const NodeId n = advert.to;
  if (alive_[static_cast<std::size_t>(
          topology_.channel_index(n, advert.in_port))] == 0) {
    ++counters_.adverts_dropped;  // the link died while it was in flight
    return;
  }
  Cycle& min_deadline = min_deadline_[static_cast<std::size_t>(n)];
  for (const auto& [dest, advertised] : advert.entries) {
    if (dest == n) continue;
    const std::int32_t cand = std::min(infinity_, advertised + 1);
    Route& r = routes_[route_index(n, dest)];
    if (r.next_port == advert.in_port) {
      // From the current next hop: adopt even if worse (it knows best),
      // and refresh the deadline. Deliveries run before expiry each
      // cycle, so a refresh beats a same-cycle timeout.
      if (cand >= infinity_) {
        withdraw(n, dest);
        continue;
      }
      if (r.metric != cand) {
        r.metric = cand;
        mark_dirty(n, dest);
      }
      r.deadline = cand >= 2 ? now + timeout_cycles() : kCycleMax;
      if (r.deadline != kCycleMax) {
        min_deadline = std::min(min_deadline, r.deadline);
      }
    } else if (cand < r.metric) {
      r.metric = cand;
      r.next_port = advert.in_port;
      r.deadline = cand >= 2 ? now + timeout_cycles() : kCycleMax;
      if (r.deadline != kCycleMax) {
        min_deadline = std::min(min_deadline, r.deadline);
      }
      mark_dirty(n, dest);
    }
  }
}

void DistanceVector::expire(Cycle now) {
  for (NodeId n = 0; n < num_nodes_; ++n) {
    Cycle& min_deadline = min_deadline_[static_cast<std::size_t>(n)];
    if (min_deadline > now) continue;
    Cycle next_min = kCycleMax;
    for (NodeId d = 0; d < num_nodes_; ++d) {
      Route& r = routes_[route_index(n, d)];
      if (r.deadline == kCycleMax) continue;
      if (r.deadline <= now) {
        withdraw(n, d, /*timeout=*/true);
      } else {
        next_min = std::min(next_min, r.deadline);
      }
    }
    min_deadline = next_min;
  }
}

void DistanceVector::send_advert(NodeId node, PortId port,
                                 const std::vector<NodeId>& dests, Cycle now,
                                 bool triggered) {
  const NodeId peer = topology_.neighbor(node, port);
  Advert advert;
  advert.deliver_at = now + static_cast<Cycle>(hop_cycles_);
  advert.to = peer;
  advert.in_port = topo::KAryNCube::opposite(port);
  advert.triggered = triggered;
  advert.entries.reserve(dests.size());
  for (NodeId dest : dests) {
    const Route& r = routes_[route_index(node, dest)];
    // Split horizon with poisoned reverse: routes through this very port
    // go out as infinity so the neighbor never routes back through us.
    const std::int32_t metric =
        r.next_port == port ? infinity_ : r.metric;
    advert.entries.emplace_back(dest, metric);
  }
  counters_.entries_sent += advert.entries.size();
  ++counters_.updates_sent;
  if (triggered) ++counters_.triggered_updates;
  in_flight_.push_back(std::move(advert));
}

void DistanceVector::send_updates(Cycle now, bool periodic) {
  std::vector<NodeId> dests;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (!periodic && node_dirty_[static_cast<std::size_t>(n)] == 0) continue;
    dests.clear();
    if (periodic) {
      dests.resize(static_cast<std::size_t>(num_nodes_));
      for (NodeId d = 0; d < num_nodes_; ++d) {
        dests[static_cast<std::size_t>(d)] = d;
      }
    } else {
      for (NodeId d = 0; d < num_nodes_; ++d) {
        if (dirty_[route_index(n, d)] != 0) dests.push_back(d);
      }
    }
    for (PortId p = 0; p < topology_.num_ports(); ++p) {
      if (topology_.neighbor(n, p) == kInvalidNode) continue;
      if (alive_[static_cast<std::size_t>(topology_.channel_index(n, p))] == 0)
        continue;
      send_advert(n, p, dests, now, /*triggered=*/!periodic);
    }
    for (NodeId d = 0; d < num_nodes_; ++d) dirty_[route_index(n, d)] = 0;
    node_dirty_[static_cast<std::size_t>(n)] = 0;
  }
  any_dirty_ = false;
}

void DistanceVector::step(Cycle now, bool active) {
  // Order matters and is part of the protocol contract (docs/FAULTS.md):
  // deliveries, then expiry, then sends. A triggered refresh delivered at
  // cycle T saves a route whose deadline is also T.
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    const Advert advert = std::move(in_flight_.front());
    in_flight_.pop_front();
    deliver(advert, now);
  }
  if (active) expire(now);
  if (active && now % config_.advert_period == 0) {
    send_updates(now, /*periodic=*/true);
  } else if (any_dirty_) {
    send_updates(now, /*periodic=*/false);
  }
}

void DistanceVector::snap(snap::Archive& ar) {
  ar.vec(routes_, [](snap::Archive& a, Route& r) {
    a.pod(r.metric);
    a.pod(r.next_port);
    a.pod(r.deadline);
  });
  ar.vec_pod(alive_);
  ar.vec_pod(dirty_);
  ar.vec_pod(node_dirty_);
  ar.pod(any_dirty_);
  ar.vec_pod(min_deadline_);
  ar.deq(in_flight_, [](snap::Archive& a, Advert& adv) {
    a.pod(adv.deliver_at);
    a.pod(adv.to);
    a.pod(adv.in_port);
    a.pod(adv.triggered);
    a.vec(adv.entries, [](snap::Archive& b,
                          std::pair<NodeId, std::int32_t>& e) {
      b.pod(e.first);
      b.pod(e.second);
    });
  });
  ar.vec(withdrawals_, [](snap::Archive& a, std::pair<NodeId, NodeId>& w) {
    a.pod(w.first);
    a.pod(w.second);
  });
  ar.pod(counters_.updates_sent);
  ar.pod(counters_.triggered_updates);
  ar.pod(counters_.entries_sent);
  ar.pod(counters_.adverts_dropped);
  ar.pod(counters_.routes_withdrawn);
  ar.pod(counters_.route_timeouts);
}

}  // namespace wavesim::fault
