// FaultPlane: the per-run owner of dynamic fault state.
//
// Holds the expanded fault timeline (schedule.hpp), the distance-vector
// reachability layer (distvec.hpp), and the activity window that lets the
// healthy-network fast path skip all fault work. The Network constructs
// one only when the config declares a dynamic fault source
// (FaultConfig::dynamic()), calls begin_cycle() first thing in its
// sequential prologue, and applies the returned link transitions to the
// PCS planes (killing probes and circuits that cross a dead link).
//
// Activity window: a fault event at cycle T keeps the plane active until
// T + timeout + 2 * advert_period -- long enough for triggered updates to
// propagate, stale routes to time out, and the resulting withdrawals to
// settle. While active, the DV layer ticks timeouts and sends periodic
// advertisements; once dormant (window passed, no adverts in flight, no
// pending updates) the plane costs one comparison per cycle, and the
// parallel engine may again run lookahead windows (bounded by
// next_event_at()). See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/distvec.hpp"
#include "fault/schedule.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::fault {

/// One link transition the Network must apply this cycle, in canonical
/// (positive-port) direction.
struct LinkChange {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  bool down = true;
};

class FaultPlane {
 public:
  struct Counters {
    std::uint64_t links_failed = 0;
    std::uint64_t links_restored = 0;
  };

  FaultPlane(const sim::SimConfig& config, const topo::KAryNCube& topology,
             sim::Rng rng);

  /// Apply due timeline events (idempotence-filtered) and advance the DV
  /// layer one cycle. Returns this cycle's link transitions for the
  /// Network to mirror into the PCS register planes. Runs in the
  /// sequential prologue only.
  std::vector<LinkChange> begin_cycle(Cycle now);

  bool link_alive(NodeId node, PortId port) const {
    return dv_.link_alive(node, port);
  }
  bool reachable(NodeId src, NodeId dest) const {
    return dv_.reachable(src, dest);
  }
  std::int32_t metric(NodeId src, NodeId dest) const {
    return dv_.metric(src, dest);
  }
  std::int32_t infinity() const noexcept { return dv_.infinity(); }

  /// No fault work pending right now: the activity window has passed and
  /// the DV layer is settled. Future timeline events do NOT make the
  /// plane non-dormant -- the engine bounds lookahead with
  /// next_event_at() instead.
  bool dormant() const noexcept { return !active_ && dv_.idle(); }
  /// Cycle of the earliest unapplied timeline event (kCycleMax when the
  /// schedule is exhausted).
  Cycle next_event_at() const noexcept {
    return next_ < timeline_.size() ? timeline_[next_].at : kCycleMax;
  }
  /// True once every scheduled event has been applied.
  bool exhausted() const noexcept { return next_ >= timeline_.size(); }

  /// Routes withdrawn during the current cycle's begin_cycle(), for
  /// kRouteWithdrawn event emission.
  const std::vector<std::pair<NodeId, NodeId>>& withdrawals() const noexcept {
    return dv_.withdrawals();
  }

  const Counters& counters() const noexcept { return counters_; }
  const DistanceVector& dv() const noexcept { return dv_; }
  const std::vector<sim::FaultEvent>& timeline() const noexcept {
    return timeline_;
  }

  /// Serialize the DV layer, timeline cursor, and activity window
  /// (snapshot/restore). The timeline itself is a deterministic expansion
  /// of the config (same seed-forked RNG on construction), so only the
  /// cursor round-trips.
  void snap(snap::Archive& ar);

 private:
  Cycle hold_cycles() const noexcept {
    return config_.dv.advert_period *
           static_cast<Cycle>(config_.dv.timeout_periods + 2);
  }
  void wake(Cycle now);

  sim::FaultConfig config_;  // [snap: skip] config, fixed at construction
  DistanceVector dv_;
  /// Sorted by (at, node, port, kind). [snap: skip] expanded
  /// deterministically from config + seed at construction; the snapped
  /// cursor next_ carries the consumed prefix.
  std::vector<sim::FaultEvent> timeline_;
  std::size_t next_ = 0;
  Cycle active_until_ = 0;
  bool active_ = false;
  Counters counters_;
};

}  // namespace wavesim::fault
