// Fault schedules: the `wavesim.faults.v1` file format and the expansion
// of declarative fault sources (explicit events, storms, Poisson churn)
// into one concrete, sorted timeline of link transitions.
//
// Expansion is deterministic: given the same FaultConfig, topology and
// Rng stream it produces the same timeline, so the sequential stepper and
// the sharded parallel engine (which share one Network) see bit-identical
// fault sequences, and a repro file replays exactly. See docs/FAULTS.md.
#pragma once

#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/json.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace wavesim::fault {

inline constexpr const char* kFaultsSchema = "wavesim.faults.v1";

/// Parse a `wavesim.faults.v1` document into a FaultConfig (dv defaults
/// apply for absent keys). Throws std::runtime_error on schema violations
/// (unknown keys are rejected -- a typo must not silently disable a
/// fault source). Range/topology validation happens later in
/// SimConfig::validate(), which needs the topology.
sim::FaultConfig faults_from_json(const sim::JsonValue& doc);

/// Serialize a FaultConfig back to `wavesim.faults.v1` (round-trips
/// through faults_from_json).
sim::JsonValue faults_to_json(const sim::FaultConfig& faults);

/// Read + parse a schedule file; throws std::runtime_error on I/O, parse
/// or schema errors (the CLI maps this to exit code 2).
sim::FaultConfig load_faults_file(const std::string& path);

/// Canonical representation of every bidirectional link: the (node, port)
/// with the positive port. `links` lists them ascending by (node, port).
std::vector<sim::FaultEvent> canonical_links(const topo::KAryNCube& topology);

/// Expand every fault source into one concrete timeline of kLinkDown /
/// kLinkUp events in canonical direction, sorted by (at, node, port,
/// kind). Node events become per-incident-link events; storms draw a
/// Fisher-Yates sample of the canonical links; churn draws per-cycle
/// Bernoulli failures with geometric repair delays. Overlapping sources
/// may name the same link twice -- application is idempotent (a down on a
/// dead link and an up on a live link are skipped).
std::vector<sim::FaultEvent> expand_schedule(const sim::FaultConfig& faults,
                                             const topo::KAryNCube& topology,
                                             sim::Rng rng);

}  // namespace wavesim::fault
