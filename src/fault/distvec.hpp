// RIP-style distance-vector reachability over the S0 control plane.
//
// Every node keeps a route (metric, next-hop port, deadline) to every
// destination. Routes converge through neighbor advertisements carried by
// the never-failing control channels: full periodic advertisements while
// the plane is active, triggered updates for changed entries, split
// horizon with poisoned reverse, and route timeouts that withdraw entries
// not refreshed for timeout_periods advert periods. The circuit planes
// use the table to decide whether a destination is worth probing; the S0
// wormhole plane never consults it (S0 never fails), so an "unreachable"
// verdict only diverts traffic to wormhole, it never strands it.
//
// Everything here runs in the sequential prologue of a cycle
// (Network::step_begin), so sequential and sharded runs are bit-identical
// by construction. All iteration is node-ascending / port-ascending and
// the advert queue is FIFO with a constant per-hop latency, so the update
// order is deterministic. See docs/FAULTS.md for the protocol rules.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::fault {

class DistanceVector {
 public:
  struct Counters {
    std::uint64_t updates_sent = 0;      ///< advertisements (all kinds)
    std::uint64_t triggered_updates = 0; ///< of which change-triggered
    std::uint64_t entries_sent = 0;      ///< route entries across adverts
    std::uint64_t adverts_dropped = 0;   ///< lost to a link dying in flight
    std::uint64_t routes_withdrawn = 0;  ///< finite -> infinity transitions
    std::uint64_t route_timeouts = 0;    ///< withdrawn by deadline expiry
  };

  DistanceVector(const topo::KAryNCube& topology,
                 const sim::DistanceVectorConfig& config,
                 std::int32_t hop_cycles);

  /// Unreachable metric: max(16, diameter + 2), the RIP "infinity".
  std::int32_t infinity() const noexcept { return infinity_; }

  std::int32_t metric(NodeId src, NodeId dest) const {
    return routes_[route_index(src, dest)].metric;
  }
  bool reachable(NodeId src, NodeId dest) const {
    return metric(src, dest) < infinity_;
  }
  /// Dynamic liveness of the channel leaving `node` through `port`
  /// (links fail bidirectionally, so both directions always agree).
  bool link_alive(NodeId node, PortId port) const {
    return alive_[static_cast<std::size_t>(
               topology_.channel_index(node, port))] != 0;
  }

  /// The bidirectional link (node, port) died: mark both directions dead,
  /// poison every route through it at both endpoints (triggered
  /// withdrawals). No-op if already dead.
  void link_down(NodeId node, PortId port, Cycle now);
  /// The link recovered: restore liveness and the direct metric-1 routes,
  /// trigger updates. No-op if already alive.
  void link_up(NodeId node, PortId port, Cycle now);

  /// Re-arm every learned route's deadline; called when the fault plane
  /// wakes from dormancy (deadlines do not tick while dormant).
  void refresh_deadlines(Cycle now);

  /// One cycle: deliver due adverts, expire deadlines (active only), send
  /// periodic (active only) and triggered advertisements.
  void step(Cycle now, bool active);

  /// True when no advertisement is in flight and no triggered update is
  /// pending -- the table is settled.
  bool idle() const noexcept { return in_flight_.empty() && !any_dirty_; }

  const Counters& counters() const noexcept { return counters_; }
  /// (node, dest) routes withdrawn during the last link_down/step calls of
  /// the current cycle; cleared by begin_cycle() on the owning plane.
  const std::vector<std::pair<NodeId, NodeId>>& withdrawals() const noexcept {
    return withdrawals_;
  }
  void clear_withdrawals() { withdrawals_.clear(); }

  /// Serialize routes, liveness, dirty sets, in-flight adverts, pending
  /// withdrawals, and counters (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  struct Route {
    std::int32_t metric = 0;
    PortId next_port = kInvalidPort;
    Cycle deadline = kCycleMax;  ///< kCycleMax = never expires
  };

  struct Advert {
    Cycle deliver_at = 0;
    NodeId to = kInvalidNode;
    PortId in_port = kInvalidPort;  ///< receiver port it arrives through
    bool triggered = false;
    std::vector<std::pair<NodeId, std::int32_t>> entries;  ///< dest, metric
  };

  std::size_t route_index(NodeId src, NodeId dest) const {
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(dest);
  }
  Cycle timeout_cycles() const noexcept {
    return config_.advert_period * static_cast<Cycle>(config_.timeout_periods);
  }

  void withdraw(NodeId node, NodeId dest, bool timeout = false);
  void mark_dirty(NodeId node, NodeId dest);
  void deliver(const Advert& advert, Cycle now);
  void expire(Cycle now);
  void send_updates(Cycle now, bool periodic);
  /// Queue one advert from `node` through `port` carrying `dests` with
  /// split horizon + poisoned reverse applied.
  void send_advert(NodeId node, PortId port,
                   const std::vector<NodeId>& dests, Cycle now,
                   bool triggered);
  void converge_initial();

  const topo::KAryNCube& topology_;
  sim::DistanceVectorConfig config_;  // [snap: skip] config, fixed at construction
  std::int32_t hop_cycles_;  // [snap: skip] derived from config at construction
  std::int32_t num_nodes_;   // [snap: skip] derived from topology at construction
  std::int32_t infinity_;    // [snap: skip] derived from config at construction
  std::vector<Route> routes_;           // N x N, src-major
  std::vector<std::uint8_t> alive_;     // per channel_index
  std::vector<std::uint8_t> dirty_;     // N x N: changed since last advert
  std::vector<std::uint8_t> node_dirty_;
  bool any_dirty_ = false;
  std::vector<Cycle> min_deadline_;     // per node, for cheap expiry scans
  std::deque<Advert> in_flight_;        // FIFO; constant one-hop latency
  std::vector<std::pair<NodeId, NodeId>> withdrawals_;
  Counters counters_;
};

}  // namespace wavesim::fault
