#include "fault/plane.hpp"

#include <algorithm>

#include "snap/archive.hpp"

namespace wavesim::fault {

FaultPlane::FaultPlane(const sim::SimConfig& config,
                       const topo::KAryNCube& topology, sim::Rng rng)
    : config_(config.faults),
      dv_(topology, config.faults.dv,
          config.faults.dv.hop_cycles > 0 ? config.faults.dv.hop_cycles
                                          : config.router.control_hop_cycles),
      timeline_(expand_schedule(config.faults, topology, rng)) {}

void FaultPlane::wake(Cycle now) {
  if (!active_) {
    active_ = true;
    // Deadlines do not tick while dormant; re-arm them so the timeout
    // machinery measures from this activation.
    dv_.refresh_deadlines(now);
  }
  active_until_ = std::max(active_until_, now + hold_cycles());
}

std::vector<LinkChange> FaultPlane::begin_cycle(Cycle now) {
  dv_.clear_withdrawals();
  std::vector<LinkChange> changes;
  while (next_ < timeline_.size() && timeline_[next_].at <= now) {
    const sim::FaultEvent& event = timeline_[next_];
    ++next_;
    const bool down = event.kind == sim::FaultEventKind::kLinkDown;
    // Overlapping sources (storm + churn + explicit events) may name the
    // same link twice: transitions are idempotent.
    if (dv_.link_alive(event.node, event.port) != down) continue;
    wake(now);
    if (down) {
      dv_.link_down(event.node, event.port, now);
      ++counters_.links_failed;
    } else {
      dv_.link_up(event.node, event.port, now);
      ++counters_.links_restored;
    }
    changes.push_back(LinkChange{event.node, event.port, down});
  }
  const bool active_now = active_ && now <= active_until_;
  if (active_ && now > active_until_) active_ = false;
  dv_.step(now, active_now);
  return changes;
}

void FaultPlane::snap(snap::Archive& ar) {
  dv_.snap(ar);
  std::uint64_t next = next_;
  ar.pod(next);
  next_ = static_cast<std::size_t>(next);
  ar.pod(active_until_);
  ar.pod(active_);
  ar.pod(counters_.links_failed);
  ar.pod(counters_.links_restored);
}

}  // namespace wavesim::fault
