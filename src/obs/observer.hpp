// Observer: attaches a TraceRecorder and/or MetricsRegistry to a live
// core::Simulation. It installs the instrumentation sink (fan-out to both
// consumers) and, when `sample_every > 0`, a step hook that snapshots the
// gauge state of the network every N cycles — channel utilization per
// switch class (S0 wormhole plane and each wave switch S_1..S_k), live
// circuits, messages in flight, and the progress-watchdog verdict.
//
// The observer is strictly read-only with respect to the simulation:
// attaching it does not change any simulated outcome, so a run with
// observability on is bit-identical to one with it off. With neither
// trace nor metrics requested, construct no Observer at all — the
// simulator then pays nothing (empty sink, empty hook).
//
// Lifetime: the Simulation must outlive the Observer; the destructor
// detaches the sink and hook it installed.
//
// Parallel engine: the sink and hook run only on the engine's calling
// thread. Events discovered during the parallel shard phase are staged in
// per-shard core::EventBuffers and flushed in ascending shard order at
// commit (see docs/ENGINE.md), so the recorders need no locks and their
// exports are byte-identical to a sequential run's.
#pragma once

#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/watchdog.hpp"

namespace wavesim::obs {

struct ObserverOptions {
  bool trace = false;                    ///< record a wavesim.trace.v1 trace
  std::size_t trace_capacity = 1u << 20; ///< ring-buffer bound (events)
  bool metrics = false;                  ///< counters + latency histograms
  Cycle sample_every = 0;                ///< gauge sampling period; 0 = off
  Cycle watchdog_patience = 20'000;      ///< cycles of no movement => stuck
};

class Observer {
 public:
  Observer(core::Simulation& sim, const ObserverOptions& options);
  ~Observer();

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  const ObserverOptions& options() const noexcept { return options_; }
  const TraceRecorder* trace() const noexcept { return trace_.get(); }
  const MetricsRegistry* metrics() const noexcept { return metrics_.get(); }

  /// Take one gauge snapshot now (also called by the step hook).
  void sample();

  /// wavesim.trace.v1 document (throws std::logic_error without trace).
  sim::JsonValue trace_json() const;
  /// wavesim.metrics.v1 document, enriched with build metadata and the
  /// network counters that are not event-derived (cache hit/miss, probe
  /// moves). Throws std::logic_error without metrics.
  sim::JsonValue metrics_json() const;

  /// Remove the sink/hook this observer installed. Idempotent; called by
  /// the destructor. After detaching, recorded data remains exportable.
  void detach();

 private:
  core::Simulation& sim_;
  ObserverOptions options_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<verify::ProgressWatchdog> watchdog_;
  Cycle next_sample_ = 0;
  std::int64_t s0_channels_ = 0;       ///< wired unidirectional links
  std::uint64_t last_s0_hops_ = 0;     ///< link_flit_hops at last sample
  Cycle last_sample_cycle_ = 0;
  bool attached_ = false;
};

}  // namespace wavesim::obs
