// Metrics registry: fixed-bucket log2 histograms, monotonic event
// counters, and a periodic gauge sampler, exported as the
// `wavesim.metrics.v1` JSON schema.
//
// The registry consumes core::Instrumentation events (via obs::Observer or
// directly through on_event) and derives three latency histograms:
//   setup_latency          first probe launch -> circuit established
//   network_latency        transfer start    -> delivery (circuit messages)
//   injection_to_delivery  submission        -> delivery (every message)
// All latencies are in cycles. Everything here is deterministic: no wall
// clock, no RNG, insertion-ordered JSON.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instrumentation.hpp"
#include "sim/json.hpp"

namespace wavesim::obs {

/// Histogram over unsigned values with power-of-two bucket boundaries:
/// bucket 0 holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i - 1].
/// Values are clamped into the last bucket, so the bucket counts always
/// sum to count() (no separate overflow bin).
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t value) noexcept;
  void merge(const Log2Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Bucket index a value falls into.
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lo(std::size_t i) noexcept;
  /// Inclusive upper bound of bucket i.
  static std::uint64_t bucket_hi(std::size_t i) noexcept;
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }

  /// {"count", "sum", "min", "max", "mean", "buckets": [{lo,hi,count}...]}
  /// Only non-empty buckets are serialized; their counts sum to "count".
  sim::JsonValue to_json() const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// One gauge snapshot taken by the sampler (obs::Observer fills these from
/// the live network once every `sample_every` cycles).
struct GaugeSample {
  Cycle cycle = 0;
  std::uint64_t circuits_live = 0;
  std::uint64_t messages_in_flight = 0;  ///< submitted - delivered
  std::int64_t flits_in_flight = 0;      ///< wormhole plane occupancy
  /// Link/channel utilization per switch class: index 0 is the S0 wormhole
  /// plane (flit-hops per channel-cycle since the previous sample), index
  /// i >= 1 is wave switch S_i (fraction of channels busy right now).
  std::vector<double> switch_utilization;
  std::string watchdog_verdict;  ///< verify::to_string(poll())
  Cycle stalled_for = 0;
};

/// Event-driven counters plus the derived latency histograms and the gauge
/// time series. The registry never touches the network itself; gauges are
/// appended by the caller.
class MetricsRegistry {
 public:
  void on_event(const core::Event& event);
  void add_sample(GaugeSample sample) {
    samples_.push_back(std::move(sample));
  }

  std::uint64_t counter(core::EventKind kind) const {
    return counters_.at(static_cast<std::size_t>(kind));
  }
  const Log2Histogram& setup_latency() const noexcept { return setup_; }
  const Log2Histogram& network_latency() const noexcept { return network_; }
  const Log2Histogram& injection_to_delivery() const noexcept {
    return injection_;
  }
  std::size_t num_samples() const noexcept { return samples_.size(); }
  std::uint64_t messages_in_flight() const noexcept {
    return counter(core::EventKind::kSubmitted) -
           counter(core::EventKind::kDelivered);
  }

  /// The full `wavesim.metrics.v1` document. `extra_counters` (may be
  /// empty) is merged into the "counters" object — the Observer passes
  /// network counters that are not event-derived (cache hits, probe moves).
  sim::JsonValue to_json(const sim::JsonValue& extra_counters,
                         Cycle sample_every) const;

 private:
  std::array<std::uint64_t, core::kNumEventKinds> counters_{};
  Log2Histogram setup_;
  Log2Histogram network_;
  Log2Histogram injection_;
  std::vector<GaugeSample> samples_;
  // Open intervals, erased on completion: bounded by in-flight work.
  std::unordered_map<MessageId, Cycle> submitted_at_;
  std::unordered_map<MessageId, Cycle> transfer_started_at_;
  std::unordered_map<CircuitId, Cycle> probe_started_at_;
};

}  // namespace wavesim::obs
