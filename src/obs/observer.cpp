#include "obs/observer.hpp"

#include <stdexcept>

#include "pcs/registers.hpp"
#include "sim/build_info.hpp"

namespace wavesim::obs {

Observer::Observer(core::Simulation& sim, const ObserverOptions& options)
    : sim_(sim), options_(options) {
  if (options_.trace) {
    trace_ = std::make_unique<TraceRecorder>(options_.trace_capacity);
  }
  if (options_.metrics || options_.sample_every > 0) {
    metrics_ = std::make_unique<MetricsRegistry>();
  }
  if (trace_ != nullptr || metrics_ != nullptr) {
    sim_.set_event_sink([this](const core::Event& e) {
      if (trace_ != nullptr) trace_->on_event(e);
      if (metrics_ != nullptr) metrics_->on_event(e);
    });
    attached_ = true;
  }
  if (options_.sample_every > 0) {
    watchdog_ = std::make_unique<verify::ProgressWatchdog>(
        sim_.network(), options_.watchdog_patience);
    const topo::KAryNCube& topo = sim_.topology();
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      for (PortId p = 0; p < topo.num_ports(); ++p) {
        if (topo.has_neighbor(n, p)) ++s0_channels_;
      }
    }
    last_sample_cycle_ = sim_.now();
    next_sample_ = sim_.now() + options_.sample_every;
    sim_.set_step_hook([this](Cycle now) {
      if (now >= next_sample_) {
        sample();
        next_sample_ = now + options_.sample_every;
      }
    });
    attached_ = true;
  }
}

Observer::~Observer() { detach(); }

void Observer::detach() {
  if (!attached_) return;
  sim_.set_event_sink({});
  sim_.set_step_hook({});
  attached_ = false;
}

void Observer::sample() {
  if (metrics_ == nullptr || watchdog_ == nullptr) return;
  const core::Network& net = sim_.network();
  GaugeSample g;
  g.cycle = sim_.now();
  g.circuits_live = net.circuits().active();
  g.messages_in_flight = metrics_->messages_in_flight();
  g.flits_in_flight = net.fabric().flits_in_flight();

  // S0: flit-hops per channel-cycle since the previous sample.
  const std::uint64_t hops = net.fabric().link_flit_hops();
  const Cycle elapsed = g.cycle - last_sample_cycle_;
  g.switch_utilization.push_back(
      elapsed > 0 && s0_channels_ > 0
          ? static_cast<double>(hops - last_s0_hops_) /
                (static_cast<double>(s0_channels_) *
                 static_cast<double>(elapsed))
          : 0.0);
  last_s0_hops_ = hops;
  last_sample_cycle_ = g.cycle;

  // S_1..S_k: fraction of wired channels currently owned by a circuit.
  if (const core::ControlPlane* cp = net.control_plane();
      cp != nullptr && s0_channels_ > 0) {
    for (std::int32_t s = 0; s < cp->num_switches(); ++s) {
      std::int64_t busy = 0;
      for (NodeId n = 0; n < sim_.topology().num_nodes(); ++n) {
        busy += cp->registers(n, s).count(pcs::ChannelStatus::kBusyCircuit);
      }
      g.switch_utilization.push_back(static_cast<double>(busy) /
                                     static_cast<double>(s0_channels_));
    }
  }

  g.watchdog_verdict = verify::to_string(watchdog_->poll());
  g.stalled_for = watchdog_->stalled_for();
  metrics_->add_sample(std::move(g));
}

sim::JsonValue Observer::trace_json() const {
  if (trace_ == nullptr) {
    throw std::logic_error("Observer: tracing was not enabled");
  }
  return trace_->to_json(sim_.topology().num_nodes());
}

sim::JsonValue Observer::metrics_json() const {
  if (metrics_ == nullptr) {
    throw std::logic_error("Observer: metrics were not enabled");
  }
  // Network counters that have no instrumentation event of their own.
  const core::SimulationStats stats = sim_.stats();
  sim::JsonValue extra =
      sim::JsonValue::object()
          .set("probe_moves", stats.probe_advances + stats.probe_backtracks)
          .set("cache_hits", stats.cache_hits)
          .set("cache_misses", stats.cache_misses)
          .set("cache_evictions", stats.cache_evictions)
          .set("buffer_reallocs", stats.buffer_reallocs);
  sim::JsonValue doc = metrics_->to_json(extra, options_.sample_every);
  doc.set("generated_by", sim::git_describe());
  if (trace_ != nullptr) doc.set("trace_events_dropped", trace_->dropped());
  return doc;
}

}  // namespace wavesim::obs
