#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace wavesim::obs {

std::size_t Log2Histogram::bucket_of(std::uint64_t value) noexcept {
  // bit_width(0) == 0, bit_width(1) == 1, bit_width(2..3) == 2, ... which
  // is exactly "0 in bucket 0, [2^(i-1), 2^i) in bucket i".
  return std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t Log2Histogram::bucket_hi(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
  sum_ += value;
  min_ = count_ == 1 ? value : std::min(min_, value);
  max_ = std::max(max_, value);
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

sim::JsonValue Log2Histogram::to_json() const {
  sim::JsonValue buckets = sim::JsonValue::array();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    buckets.push_back(sim::JsonValue::object()
                          .set("lo", bucket_lo(i))
                          .set("hi", bucket_hi(i))
                          .set("count", counts_[i]));
  }
  return sim::JsonValue::object()
      .set("count", count_)
      .set("sum", sum_)
      .set("min", min())
      .set("max", max_)
      .set("mean", mean())
      .set("buckets", std::move(buckets));
}

void MetricsRegistry::on_event(const core::Event& event) {
  ++counters_[static_cast<std::size_t>(event.kind)];
  switch (event.kind) {
    case core::EventKind::kSubmitted:
      if (event.msg != kInvalidMessage) submitted_at_[event.msg] = event.at;
      break;
    case core::EventKind::kProbeLaunched:
      // First attempt only: retries on other switches belong to the same
      // end-to-end setup, whose latency the paper's anatomy cares about.
      if (event.circuit != kInvalidCircuit) {
        probe_started_at_.emplace(event.circuit, event.at);
      }
      break;
    case core::EventKind::kCircuitEstablished:
      if (auto it = probe_started_at_.find(event.circuit);
          it != probe_started_at_.end()) {
        setup_.add(event.at - it->second);
        probe_started_at_.erase(it);
      }
      break;
    case core::EventKind::kSetupAbandoned:
      probe_started_at_.erase(event.circuit);
      break;
    case core::EventKind::kTransferStarted:
      if (event.msg != kInvalidMessage) {
        transfer_started_at_[event.msg] = event.at;
      }
      break;
    case core::EventKind::kDelivered: {
      if (auto it = submitted_at_.find(event.msg); it != submitted_at_.end()) {
        injection_.add(event.at - it->second);
        submitted_at_.erase(it);
      }
      if (auto it = transfer_started_at_.find(event.msg);
          it != transfer_started_at_.end()) {
        network_.add(event.at - it->second);
        transfer_started_at_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

namespace {

sim::JsonValue samples_to_json(const std::vector<GaugeSample>& samples) {
  // Column-major header + row arrays keep the time series compact. The
  // utilization columns depend on k, taken from the first sample.
  const std::size_t util_cols =
      samples.empty() ? 0 : samples.front().switch_utilization.size();
  sim::JsonValue columns = sim::JsonValue::array();
  for (const char* name : {"cycle", "circuits_live", "messages_in_flight",
                           "flits_in_flight"}) {
    columns.push_back(name);
  }
  for (std::size_t s = 0; s < util_cols; ++s) {
    columns.push_back("util_s" + std::to_string(s));
  }
  columns.push_back("watchdog_verdict");
  columns.push_back("stalled_for");

  sim::JsonValue rows = sim::JsonValue::array();
  for (const GaugeSample& g : samples) {
    sim::JsonValue row = sim::JsonValue::array();
    row.push_back(g.cycle);
    row.push_back(g.circuits_live);
    row.push_back(g.messages_in_flight);
    row.push_back(g.flits_in_flight);
    for (std::size_t s = 0; s < util_cols; ++s) {
      row.push_back(s < g.switch_utilization.size()
                        ? g.switch_utilization[s]
                        : 0.0);
    }
    row.push_back(g.watchdog_verdict);
    row.push_back(g.stalled_for);
    rows.push_back(std::move(row));
  }
  return sim::JsonValue::object()
      .set("columns", std::move(columns))
      .set("rows", std::move(rows));
}

}  // namespace

sim::JsonValue MetricsRegistry::to_json(const sim::JsonValue& extra_counters,
                                        Cycle sample_every) const {
  sim::JsonValue counters = sim::JsonValue::object();
  for (std::size_t i = 0; i < core::kNumEventKinds; ++i) {
    counters.set(core::to_string(static_cast<core::EventKind>(i)),
                 counters_[i]);
  }
  if (extra_counters.is_object()) {
    for (const auto& [key, value] : extra_counters.members()) {
      counters.set(key, value);
    }
  }
  return sim::JsonValue::object()
      .set("schema", "wavesim.metrics.v1")
      .set("sample_every", sample_every)
      .set("counters", std::move(counters))
      .set("histograms",
           sim::JsonValue::object()
               .set("setup_latency", setup_.to_json())
               .set("network_latency", network_.to_json())
               .set("injection_to_delivery", injection_.to_json()))
      .set("samples", samples_to_json(samples_));
}

}  // namespace wavesim::obs
