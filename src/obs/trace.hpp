// Trace recorder: captures core::Instrumentation events into a bounded
// ring buffer and exports them as Chrome trace-event JSON (the
// `wavesim.trace.v1` schema), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
//
// Mapping: one async span per message (cat "msg": submitted -> delivered,
// with async-instant milestones in between), one async span per circuit
// (cat "circuit": probe launch -> teardown / abandon), and thread-scoped
// instant events for the per-node occurrences (evictions, release
// demands, backtracks, misroutes, fallbacks). pid 0 is the whole network;
// tid is the node id. Timestamps are cycles, written in the "ts"
// microsecond field verbatim.
//
// Recording is O(1) per event (one ring-buffer write); all span
// bookkeeping happens at export time. When the buffer is full the oldest
// event is dropped and counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/instrumentation.hpp"
#include "sim/json.hpp"

namespace wavesim::obs {

class TraceRecorder {
 public:
  /// `capacity` bounds the ring buffer (events). Must be >= 1.
  explicit TraceRecorder(std::size_t capacity = 1u << 20);

  void on_event(const core::Event& event);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return ring_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Events in recording order, oldest first (ring unrolled).
  std::vector<core::Event> events() const;

  /// Full Chrome-trace JSON object: {"traceEvents": [...], "otherData":
  /// {"schema": "wavesim.trace.v1", ...}}. Events are emitted in
  /// nondecreasing-timestamp order. `num_nodes` > 0 adds thread-name
  /// metadata records for nodes [0, num_nodes).
  sim::JsonValue to_json(std::int32_t num_nodes = 0) const;

 private:
  std::vector<core::Event> ring_;
  std::size_t head_ = 0;  ///< index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace wavesim::obs
