#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "sim/build_info.hpp"

namespace wavesim::obs {

namespace {

using core::Event;
using core::EventKind;

sim::JsonValue base_record(const char* name, const char* phase,
                           const Event& e) {
  return sim::JsonValue::object()
      .set("name", name)
      .set("ph", phase)
      .set("ts", e.at)
      .set("pid", 0)
      .set("tid", e.node);
}

sim::JsonValue args_of(const Event& e) {
  sim::JsonValue args = sim::JsonValue::object();
  if (e.msg != kInvalidMessage) args.set("msg", e.msg);
  if (e.circuit != kInvalidCircuit) args.set("circuit", e.circuit);
  if (e.port != kInvalidPort) args.set("port", e.port);
  return args;
}

/// Async record (ph b/n/e): needs a category and an id to correlate.
sim::JsonValue async_record(const std::string& name, const char* phase,
                            const char* category, std::int64_t id,
                            const Event& e) {
  return sim::JsonValue::object()
      .set("name", name)
      .set("cat", category)
      .set("ph", phase)
      .set("id", id)
      .set("ts", e.at)
      .set("pid", 0)
      .set("tid", e.node)
      .set("args", args_of(e));
}

sim::JsonValue instant_record(const Event& e) {
  return base_record(core::to_string(e.kind), "i", e)
      .set("s", "t")  // thread scope
      .set("args", args_of(e));
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) {
  if (capacity < 1) {
    throw std::invalid_argument("TraceRecorder: capacity < 1");
  }
  ring_.resize(capacity);
}

void TraceRecorder::on_event(const core::Event& event) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = event;
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<core::Event> TraceRecorder::events() const {
  std::vector<core::Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

sim::JsonValue TraceRecorder::to_json(std::int32_t num_nodes) const {
  std::vector<core::Event> evs = events();
  // Delivery events carry the (earlier) arrival cycle, so raw recording
  // order is not time-sorted; the exported trace is. Stable to keep the
  // within-cycle emission order deterministic.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });

  sim::JsonValue records = sim::JsonValue::array();
  records.push_back(sim::JsonValue::object()
                        .set("name", "process_name")
                        .set("ph", "M")
                        .set("pid", 0)
                        .set("tid", 0)
                        .set("args", sim::JsonValue::object().set(
                                         "name", "wavesim network")));
  for (NodeId n = 0; n < num_nodes; ++n) {
    records.push_back(
        sim::JsonValue::object()
            .set("name", "thread_name")
            .set("ph", "M")
            .set("pid", 0)
            .set("tid", n)
            .set("args", sim::JsonValue::object().set(
                             "name", "node " + std::to_string(n))));
  }

  // Span bookkeeping: async begins only once per id, ends only for open
  // spans (the ring may have dropped a begin or an end).
  std::unordered_set<std::int64_t> open_msgs;
  std::unordered_set<std::int64_t> open_circuits;
  for (const Event& e : evs) {
    switch (e.kind) {
      case EventKind::kSubmitted:
        if (e.msg != kInvalidMessage && open_msgs.insert(e.msg).second) {
          records.push_back(async_record("msg " + std::to_string(e.msg), "b",
                                         "msg", e.msg, e));
        }
        break;
      case EventKind::kDelivered:
        if (e.msg != kInvalidMessage && open_msgs.erase(e.msg) > 0) {
          records.push_back(async_record("msg " + std::to_string(e.msg), "e",
                                         "msg", e.msg, e));
        }
        break;
      case EventKind::kTransferStarted:
      case EventKind::kTransferCompleted:
      case EventKind::kFallbackWormhole:
        if (e.msg != kInvalidMessage && open_msgs.count(e.msg) > 0) {
          records.push_back(async_record(core::to_string(e.kind), "n", "msg",
                                         e.msg, e));
        } else {
          records.push_back(instant_record(e));
        }
        break;
      case EventKind::kProbeLaunched:
        if (e.circuit != kInvalidCircuit) {
          if (open_circuits.insert(e.circuit).second) {
            records.push_back(async_record(
                "circuit " + std::to_string(e.circuit), "b", "circuit",
                e.circuit, e));
          } else {
            // Retry on another switch within the same setup.
            records.push_back(async_record(core::to_string(e.kind), "n",
                                           "circuit", e.circuit, e));
          }
        }
        break;
      case EventKind::kCircuitEstablished:
        if (e.circuit != kInvalidCircuit &&
            open_circuits.count(e.circuit) > 0) {
          records.push_back(async_record(core::to_string(e.kind), "n",
                                         "circuit", e.circuit, e));
        }
        break;
      case EventKind::kSetupAbandoned:
      case EventKind::kTeardownStarted:
      case EventKind::kCircuitInvalidated:  // link failure closes the span
        if (e.circuit != kInvalidCircuit &&
            open_circuits.erase(e.circuit) > 0) {
          records.push_back(async_record(
              "circuit " + std::to_string(e.circuit), "e", "circuit",
              e.circuit, e));
        }
        records.push_back(instant_record(e));
        break;
      case EventKind::kEvicted:
      case EventKind::kReleaseDemanded:
      case EventKind::kBacktracked:
      case EventKind::kMisrouted:
      case EventKind::kForceTeardown:
      case EventKind::kLinkDown:
      case EventKind::kLinkUp:
      case EventKind::kRouteWithdrawn:
        records.push_back(instant_record(e));
        break;
    }
  }
  // Close spans left open at capture end so viewers render them.
  // (Sorted order means "the last timestamp seen" is the trace end.)
  if (!evs.empty()) {
    Event end = evs.back();
    // [det: local] collect-then-sort; bucket order never escapes.
    std::vector<std::int64_t> leftover_msgs(open_msgs.begin(),
                                            open_msgs.end());
    // [det: local] collect-then-sort; bucket order never escapes.
    std::vector<std::int64_t> leftover_circuits(open_circuits.begin(),
                                                open_circuits.end());
    std::sort(leftover_msgs.begin(), leftover_msgs.end());
    std::sort(leftover_circuits.begin(), leftover_circuits.end());
    for (const std::int64_t id : leftover_msgs) {
      end.msg = id;
      end.circuit = kInvalidCircuit;
      records.push_back(
          async_record("msg " + std::to_string(id), "e", "msg", id, end));
    }
    end.msg = kInvalidMessage;
    for (const std::int64_t id : leftover_circuits) {
      end.circuit = id;
      records.push_back(async_record("circuit " + std::to_string(id), "e",
                                     "circuit", id, end));
    }
  }

  return sim::JsonValue::object()
      .set("traceEvents", std::move(records))
      .set("displayTimeUnit", "ms")
      .set("otherData",
           sim::JsonValue::object()
               .set("schema", "wavesim.trace.v1")
               .set("generated_by", sim::git_describe())
               .set("time_unit", "cycles")
               .set("events_recorded", size_)
               .set("events_dropped", dropped_)
               .set("capacity", ring_.size()));
}

}  // namespace wavesim::obs
