// Static (pre-simulation) deadlock-freedom check: the escape-channel CDG
// of the configured wormhole routing algorithm must be acyclic (Dally &
// Seitz for deterministic algorithms, Duato's theorem for adaptive ones —
// see routing/cdg.hpp). The scenario checker runs this oracle on every
// generated configuration before spending any cycles simulating it, so a
// routing-layer regression is caught structurally and instantly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "verify/delivery.hpp"

namespace wavesim::route {
class ChannelDependencyGraph;
}

namespace wavesim::verify {

/// Decode a CDG cycle (as returned by find_cycle()) into an ordered
/// witness whose every consecutive hop pair is an edge of `graph`.
CycleWitness escape_cycle_witness(const route::ChannelDependencyGraph& graph,
                                  const std::vector<std::int32_t>& cycle);

/// Build the routing algorithm `config` selects and check that its escape
/// subnetwork's channel-dependency graph is acyclic. On a violation the
/// result carries the full cycle witness (CheckResult::witnesses) and the
/// violation message names the algorithm, the cycle length and the cycle
/// itself. Throws std::invalid_argument on an invalid config.
CheckResult check_escape_acyclic(const sim::SimConfig& config);

}  // namespace wavesim::verify
