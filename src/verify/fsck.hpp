// Control-plane state checker ("fsck"): structural invariants over the
// distributed PCS registers, the circuit table and the circuit caches.
// Valid at any cycle boundary; the stress suites run it periodically so a
// protocol bug is caught at the cycle it corrupts state, not when a
// message finally goes missing.
//
// Invariants checked:
//  I1  every Busy channel names a live circuit (never a retired one);
//  I2  every Reserved channel names a live probe;
//  I3  every Established circuit's recorded path exists hop-by-hop in the
//      registers: status Busy, correct owner, Ack-Returned set, and the
//      direct/reverse mappings chain from the source's kLocalEndpoint to
//      the destination;
//  I4  no channel is owned by two circuits (path walks never collide);
//  I5  cache entries agree with the table: an ack_returned entry points at
//      an Established circuit of matching (src, dest); a probing entry
//      points at a kProbing circuit;
//  I6  in_use circuits are Established;
//  I7  every parked Force probe decided to wait on a channel whose circuit
//      had returned its ack (decision-time snapshot; the runtime half of
//      wavecheck's force-waits-only-on-acked row, mirrored by the BMC's
//      bmc-force-waits-only-on-acked check).
#pragma once

#include "core/network.hpp"
#include "verify/delivery.hpp"

namespace wavesim::verify {

CheckResult check_control_state(const core::Network& network);

}  // namespace wavesim::verify
