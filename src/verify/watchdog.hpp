// Progress watchdog: the dynamic complement to the paper's deadlock- and
// livelock-freedom theorems. It samples every activity counter in the
// network; if work is pending but nothing has moved for `patience` cycles,
// the network is declared stuck (which Theorems 1-4 say must never
// happen).
#pragma once

#include "core/network.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::verify {

enum class Verdict {
  kProgressing,  ///< something moved since the last poll
  kIdle,         ///< nothing pending anywhere
  kWaiting,      ///< no movement yet, but patience has not elapsed
  kStuck,        ///< pending work with no movement for >= patience cycles
};

const char* to_string(Verdict verdict) noexcept;

class ProgressWatchdog {
 public:
  ProgressWatchdog(const core::Network& network, Cycle patience);

  /// Call periodically (any interval). Compares activity counters against
  /// the previous poll.
  Verdict poll();

  Cycle stalled_for() const noexcept { return stalled_; }

  /// Serialize the last-poll sample and stall accumulator
  /// (snapshot/restore), so a restored run's stall verdicts match an
  /// uninterrupted one.
  void snap(snap::Archive& ar);

 private:
  struct Snapshot {
    std::uint64_t delivered = 0;
    std::uint64_t wormhole_moves = 0;
    std::uint64_t probe_moves = 0;
    std::uint64_t circuit_flits = 0;
    std::uint64_t control_events = 0;
    std::uint64_t fault_events = 0;  ///< link flips + DV protocol actions

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  Snapshot take() const;

  const core::Network& network_;
  Cycle patience_;  // [snap: skip] config, fixed at construction
  Snapshot last_;
  Cycle last_poll_cycle_ = 0;
  Cycle stalled_ = 0;
};

}  // namespace wavesim::verify
