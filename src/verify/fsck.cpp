#include "verify/fsck.hpp"

#include <map>
#include <set>
#include <sstream>

namespace wavesim::verify {

namespace {

using core::CircuitState;

void note(CheckResult& result, const std::ostringstream& os) {
  result.violations.push_back(os.str());
}

using ChannelKey = std::tuple<NodeId, std::int32_t, PortId>;

/// Walk one circuit's recorded path and validate the register states the
/// circuit's lifecycle allows:
///  * kEstablished: every hop Busy + Ack-Returned, owned by the circuit,
///    reverse mappings chaining from kLocalEndpoint to the destination;
///  * kProbing: a Reserved prefix (the probe's reservations, or those
///    awaiting the travelling ack) followed by a Busy suffix the ack has
///    already committed -- the switch happens exactly once;
///  * kTearingDown: an arbitrary prefix already released (and possibly
///    re-acquired by others) followed by a contiguous Busy suffix still
///    owned by the circuit.
/// Channels owned/reserved on behalf of this circuit are added to
/// `accounted` so the register sweep can exempt them.
void walk_circuit(const core::Network& network, const core::CircuitRecord& rec,
                  std::map<ChannelKey, CircuitId>& busy_owner,
                  std::set<ChannelKey>& accounted, CheckResult& result) {
  const auto* plane = network.control_plane();
  const auto& topo = network.topology();
  NodeId at = rec.src;
  PortId expected_in = pcs::kLocalEndpoint;
  bool seen_busy = false;

  for (std::size_t h = 0; h < rec.path.size(); ++h) {
    const PortId out = rec.path[h];
    const auto& regs = plane->registers(at, rec.switch_index);
    std::ostringstream os;
    os << "circuit " << rec.id << " (" << to_string(rec.state) << ") hop "
       << h << " at node " << at << " port " << out << ": ";
    const NodeId next = topo.neighbor(at, out);
    if (next == kInvalidNode) {
      os << "I3: path leaves the topology";
      note(result, os);
      return;
    }
    const auto status = regs.status(out);
    const bool owned_busy = status == pcs::ChannelStatus::kBusyCircuit &&
                            regs.owning_circuit(out) == rec.id;
    switch (rec.state) {
      case CircuitState::kEstablished:
        if (!owned_busy) {
          os << "I3: status " << pcs::to_string(status) << ", owner "
             << regs.owning_circuit(out);
          note(result, os);
          return;
        }
        if (!regs.ack_returned(out)) {
          os << "I3: established circuit without Ack-Returned";
          note(result, os);
        }
        if (regs.reverse_map(out) != expected_in) {
          os << "I3: reverse mapping " << regs.reverse_map(out)
             << " != expected " << expected_in;
          note(result, os);
        }
        break;

      case CircuitState::kProbing:
        if (owned_busy) {
          seen_busy = true;
        } else if (status == pcs::ChannelStatus::kReservedByProbe) {
          if (seen_busy) {
            os << "I3: Reserved hop after a committed (Busy) hop -- the ack "
                  "commits from the destination backwards";
            note(result, os);
            return;
          }
          if (regs.reverse_map(out) != expected_in) {
            os << "I3: reverse mapping " << regs.reverse_map(out)
               << " != expected " << expected_in;
            note(result, os);
          }
        } else {
          os << "I3: probing circuit hop is " << pcs::to_string(status)
             << " owned by " << regs.owning_circuit(out);
          note(result, os);
          return;
        }
        accounted.insert(ChannelKey{at, rec.switch_index, out});
        break;

      case CircuitState::kTearingDown:
        // Teardown releases from the source forwards, so the owned hops
        // form a contiguous suffix: a released (possibly re-acquired) hop
        // may never follow a still-owned one.
        if (owned_busy) {
          seen_busy = true;
        } else {
          if (seen_busy) {
            os << "I3: released hop after a still-owned hop -- teardown "
                  "releases from the source forwards";
            note(result, os);
            return;
          }
        }
        break;

      case CircuitState::kDead:
        return;  // retired circuits never reach the walker
    }
    if (owned_busy) {
      const auto [it, inserted] =
          busy_owner.emplace(ChannelKey{at, rec.switch_index, out}, rec.id);
      if (!inserted) {
        os << "I4: channel also owned by circuit " << it->second;
        note(result, os);
      }
      accounted.insert(ChannelKey{at, rec.switch_index, out});
    }
    expected_in = topo::KAryNCube::opposite(out);
    at = next;
  }
  if (rec.state == CircuitState::kEstablished && at != rec.dest) {
    std::ostringstream os;
    os << "I3: circuit " << rec.id << " path ends at node " << at
       << " instead of " << rec.dest;
    note(result, os);
  }
}

}  // namespace

CheckResult check_control_state(const core::Network& network) {
  CheckResult result;
  const auto* plane = network.control_plane();
  if (plane == nullptr) return result;  // pure wormhole network: nothing to do
  const auto& topo = network.topology();
  const auto& circuits = network.circuits();
  const std::int32_t k = network.config().router.wave_switches;

  // Path walks first (I3/I4/I6); they also collect which channels are
  // legitimately held on behalf of circuits mid-transition.
  std::map<ChannelKey, CircuitId> busy_owner;
  std::set<ChannelKey> accounted;
  for (const CircuitId id : circuits.active_ids()) {
    const auto& rec = circuits.at(id);
    if (rec.in_use && rec.state != CircuitState::kEstablished) {
      std::ostringstream os;
      os << "I6: circuit " << id << " in_use while " << to_string(rec.state);
      note(result, os);
    }
    walk_circuit(network, rec, busy_owner, accounted, result);
  }

  // Register sweep: I1 (busy -> live circuit) and I2 (reserved -> live
  // probe, or a successful probe's reservation awaiting its ack).
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (std::int32_t s = 0; s < k; ++s) {
      const auto& regs = plane->registers(n, s);
      for (PortId p = 0; p < topo.num_ports(); ++p) {
        switch (regs.status(p)) {
          case pcs::ChannelStatus::kBusyCircuit:
            if (!circuits.contains(regs.owning_circuit(p))) {
              std::ostringstream os;
              os << "I1: channel (node " << n << ", sw " << s << ", port "
                 << p << ") busy with retired circuit "
                 << regs.owning_circuit(p);
              note(result, os);
            }
            break;
          case pcs::ChannelStatus::kReservedByProbe:
            if (!plane->probe_active(regs.reserving_probe(p)) &&
                accounted.find(ChannelKey{n, s, p}) == accounted.end()) {
              std::ostringstream os;
              os << "I2: channel (node " << n << ", sw " << s << ", port "
                 << p << ") reserved by dead probe "
                 << regs.reserving_probe(p)
                 << " and not on any probing circuit's path";
              note(result, os);
            }
            break;
          case pcs::ChannelStatus::kFree:
          case pcs::ChannelStatus::kFaulty:
            break;
        }
      }
    }
  }

  // I5: cache entries agree with the table.
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const auto& cache = network.interface(n).cache();
    for (std::int32_t i = 0; i < cache.capacity(); ++i) {
      const auto& e = cache.slot(i);
      if (!e.valid) continue;
      std::ostringstream os;
      os << "I5: node " << n << " cache slot " << i << " (dest " << e.dest
         << ", circuit " << e.circuit << "): ";
      if (!circuits.contains(e.circuit)) {
        os << "circuit not in table";
        note(result, os);
        continue;
      }
      const auto& rec = circuits.at(e.circuit);
      if (rec.src != n || rec.dest != e.dest) {
        os << "circuit is " << rec.src << "->" << rec.dest;
        note(result, os);
        continue;
      }
      if (e.ack_returned && rec.state != CircuitState::kEstablished) {
        os << "ack_returned but circuit is " << to_string(rec.state);
        note(result, os);
      }
      if (e.probing && rec.state != CircuitState::kProbing) {
        os << "probing flag but circuit is " << to_string(rec.state);
        note(result, os);
      }
    }
  }

  // I7: every parked Force probe decided to wait on a channel whose
  // circuit had already returned its ack (the Theorem-1 premise wavecheck
  // marks force-waits-only-on-acked; its BMC twin is
  // bmc-force-waits-only-on-acked). The snapshot is taken at decision
  // time because the channel may legitimately be freed, re-reserved or
  // torn down between the wait and the probe's next re-decide.
  for (const auto& wp : plane->waiting_probes()) {
    if (wp.was_acked) continue;
    std::ostringstream os;
    os << "I7: probe " << wp.probe << " force-waits at (node " << wp.node
       << ", sw " << wp.switch_index << ", port " << wp.port
       << ") on a channel that had not returned its ack";
    note(result, os);
  }
  return result;
}

}  // namespace wavesim::verify
