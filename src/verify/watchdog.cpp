#include "verify/watchdog.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::verify {

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kProgressing: return "progressing";
    case Verdict::kIdle: return "idle";
    case Verdict::kWaiting: return "waiting";
    case Verdict::kStuck: return "stuck";
  }
  return "?";
}

ProgressWatchdog::ProgressWatchdog(const core::Network& network, Cycle patience)
    : network_(network), patience_(patience) {
  if (patience < 1) {
    throw std::invalid_argument("ProgressWatchdog: patience < 1");
  }
  last_ = take();
  last_poll_cycle_ = network.now();
}

ProgressWatchdog::Snapshot ProgressWatchdog::take() const {
  Snapshot s;
  s.delivered = network_.messages_delivered();
  s.wormhole_moves =
      network_.fabric().link_flit_hops() + network_.fabric().flits_delivered();
  if (const auto* cp = network_.control_plane(); cp != nullptr) {
    const auto& st = cp->stats();
    s.probe_moves = st.probe_advances + st.probe_backtracks;
    s.control_events = st.acks_completed + st.teardowns_completed +
                       st.release_requests_sent + st.probes_failed +
                       st.probes_launched;
  }
  if (const auto* dp = network_.data_plane(); dp != nullptr) {
    s.circuit_flits = dp->flits_delivered();
  }
  if (const auto* fp = network_.fault_plane(); fp != nullptr) {
    const auto& fc = fp->counters();
    const auto& dc = fp->dv().counters();
    s.fault_events = fc.links_failed + fc.links_restored + dc.updates_sent +
                     dc.routes_withdrawn + dc.route_timeouts +
                     dc.adverts_dropped;
  }
  return s;
}

Verdict ProgressWatchdog::poll() {
  const Snapshot current = take();
  const Cycle now = network_.now();
  if (!(current == last_)) {
    last_ = current;
    last_poll_cycle_ = now;
    stalled_ = 0;
    return Verdict::kProgressing;
  }
  if (network_.quiescent()) {
    stalled_ = 0;
    return Verdict::kIdle;
  }
  // Traffic fully drained with a dormant fault plane: the network is
  // deliberately parked until the next scheduled fault event, which is
  // progress-by-schedule, not a stall.
  if (const auto* fp = network_.fault_plane();
      fp != nullptr && fp->dormant() && network_.traffic_quiescent()) {
    stalled_ = 0;
    return Verdict::kIdle;
  }
  stalled_ = now - last_poll_cycle_;
  return stalled_ >= patience_ ? Verdict::kStuck : Verdict::kWaiting;
}

void ProgressWatchdog::snap(snap::Archive& ar) {
  ar.pod(last_.delivered);
  ar.pod(last_.wormhole_moves);
  ar.pod(last_.probe_moves);
  ar.pod(last_.circuit_flits);
  ar.pod(last_.control_events);
  ar.pod(last_.fault_events);
  ar.pod(last_poll_cycle_);
  ar.pod(stalled_);
}

}  // namespace wavesim::verify
