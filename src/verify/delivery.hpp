// Post-run delivery invariants:
//  * completeness -- every offered message was delivered;
//  * causality    -- delivered-at >= created-at, mode assigned;
//  * in-order     -- circuit messages of a (src, dest) pair arrive in send
//                    order (paper section 2: "once a circuit has been
//                    established ... in-order delivery is guaranteed");
//  * conservation -- no wormhole flit was lost or duplicated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace wavesim::verify {

/// One hop of a dependency-cycle witness: a vertex of the graph the cycle
/// was found in, decoded back to the physical resource it models.
struct WitnessHop {
  std::int32_t vertex = -1;  ///< vertex id in the graph that was checked
  std::string name;          ///< e.g. "wh n5:p2:vc1" or "est n3:p0:s0"
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  /// Layer-specific minor index: the VC (wormhole layer) or the switch
  /// index (control / circuit layers).
  std::int32_t index = -1;

  friend bool operator==(const WitnessHop&, const WitnessHop&) = default;
};

/// An ordered dependency cycle: for every i, hops[i] -> hops[(i+1) % n] is
/// an edge of the graph named by `graph`. Produced directly from the
/// graph's own cycle search (never reconstructed after the fact), so every
/// consecutive pair is guaranteed to be a real edge.
struct CycleWitness {
  std::string graph;  ///< which graph: "escape-cdg", "extended", ...
  std::vector<WitnessHop> hops;

  /// "a -> b -> c -> a" using the hop names. `max_hops` > 0 elides the
  /// middle of longer cycles ("... (N more) ->") to keep messages bounded.
  std::string describe(std::size_t max_hops = 0) const;
};

struct CheckResult {
  std::vector<std::string> violations;
  /// Cycle witnesses backing cycle-shaped violations (same order as the
  /// violations they accompany; may be empty for non-cycle violations).
  std::vector<CycleWitness> witnesses;
  bool ok() const noexcept { return violations.empty(); }
  std::string summary() const;
};

/// Run all delivery invariants over a (typically quiescent) network.
CheckResult check_delivery(const core::Network& network);

/// Conservation only (valid mid-run as well).
CheckResult check_conservation(const core::Network& network);

/// Leak check for a quiescent network: with nothing in flight, no channel
/// may remain Reserved (a leaked probe reservation), and every Busy
/// channel must belong to a cached, idle, Established circuit. Call after
/// run_until_delivered(); complements check_control_state, which allows
/// mid-transition states.
CheckResult check_drained(const core::Network& network);

}  // namespace wavesim::verify
