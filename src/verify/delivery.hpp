// Post-run delivery invariants:
//  * completeness -- every offered message was delivered;
//  * causality    -- delivered-at >= created-at, mode assigned;
//  * in-order     -- circuit messages of a (src, dest) pair arrive in send
//                    order (paper section 2: "once a circuit has been
//                    established ... in-order delivery is guaranteed");
//  * conservation -- no wormhole flit was lost or duplicated.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"

namespace wavesim::verify {

struct CheckResult {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string summary() const;
};

/// Run all delivery invariants over a (typically quiescent) network.
CheckResult check_delivery(const core::Network& network);

/// Conservation only (valid mid-run as well).
CheckResult check_conservation(const core::Network& network);

/// Leak check for a quiescent network: with nothing in flight, no channel
/// may remain Reserved (a leaked probe reservation), and every Busy
/// channel must belong to a cached, idle, Established circuit. Call after
/// run_until_delivered(); complements check_control_state, which allows
/// mid-transition states.
CheckResult check_drained(const core::Network& network);

}  // namespace wavesim::verify
