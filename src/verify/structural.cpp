#include "verify/structural.hpp"

#include <sstream>

#include "routing/cdg.hpp"
#include "routing/routing.hpp"

namespace wavesim::verify {

CycleWitness escape_cycle_witness(const route::ChannelDependencyGraph& graph,
                                  const std::vector<std::int32_t>& cycle) {
  CycleWitness witness;
  witness.graph = "escape-cdg";
  witness.hops.reserve(cycle.size());
  for (const std::int32_t vertex : cycle) {
    WitnessHop hop;
    hop.vertex = vertex;
    graph.decode(vertex, hop.node, hop.port, hop.index);
    std::ostringstream name;
    name << "wh n" << hop.node << ":p" << hop.port << ":vc" << hop.index;
    hop.name = name.str();
    witness.hops.push_back(std::move(hop));
  }
  return witness;
}

CheckResult check_escape_acyclic(const sim::SimConfig& config) {
  config.validate();
  CheckResult result;
  const topo::KAryNCube topology(config.topology.radix, config.topology.torus);
  const auto routing = route::make_routing(config.router.routing, topology,
                                           config.router.wormhole_vcs);
  // Deterministic algorithms mark every candidate escape, so the
  // escape-only CDG covers their whole dependency graph; for Duato it is
  // exactly the escape subnet the theorem requires to be acyclic.
  const auto graph = route::build_cdg(topology, *routing,
                                      config.router.wormhole_vcs,
                                      /*escape_only=*/true);
  const auto cycle = graph.find_cycle();
  if (cycle.empty()) return result;

  CycleWitness witness = escape_cycle_witness(graph, cycle);
  std::ostringstream os;
  os << "escape-channel CDG of " << routing->name() << " ("
     << config.router.wormhole_vcs << " VCs, "
     << (config.topology.torus ? "torus" : "mesh")
     << ") has a dependency cycle of length " << cycle.size() << ": "
     << witness.describe(/*max_hops=*/12);
  result.violations.push_back(os.str());
  result.witnesses.push_back(std::move(witness));
  return result;
}

}  // namespace wavesim::verify
