#include "verify/structural.hpp"

#include <sstream>

#include "routing/cdg.hpp"
#include "routing/routing.hpp"

namespace wavesim::verify {

CheckResult check_escape_acyclic(const sim::SimConfig& config) {
  config.validate();
  CheckResult result;
  const topo::KAryNCube topology(config.topology.radix, config.topology.torus);
  const auto routing = route::make_routing(config.router.routing, topology,
                                           config.router.wormhole_vcs);
  // Deterministic algorithms mark every candidate escape, so the
  // escape-only CDG covers their whole dependency graph; for Duato it is
  // exactly the escape subnet the theorem requires to be acyclic.
  const auto graph = route::build_cdg(topology, *routing,
                                      config.router.wormhole_vcs,
                                      /*escape_only=*/true);
  const auto cycle = graph.find_cycle();
  if (cycle.empty()) return result;

  std::ostringstream os;
  os << "escape-channel CDG of " << routing->name() << " ("
     << config.router.wormhole_vcs << " VCs, "
     << (config.topology.torus ? "torus" : "mesh")
     << ") has a dependency cycle of length " << cycle.size() << ":";
  const std::size_t shown = cycle.size() < 6 ? cycle.size() : 6;
  const std::int32_t num_vcs = config.router.wormhole_vcs;
  for (std::size_t i = 0; i < shown; ++i) {
    const std::int32_t vc = cycle[i] % num_vcs;
    const std::int32_t channel = cycle[i] / num_vcs;
    os << " ch" << channel << ".vc" << vc;
  }
  if (shown < cycle.size()) os << " ...";
  result.violations.push_back(os.str());
  return result;
}

}  // namespace wavesim::verify
