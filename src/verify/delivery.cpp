#include "verify/delivery.hpp"

#include <map>
#include <sstream>

namespace wavesim::verify {

std::string CycleWitness::describe(std::size_t max_hops) const {
  std::ostringstream os;
  const std::size_t shown =
      (max_hops == 0 || hops.size() <= max_hops) ? hops.size() : max_hops;
  for (std::size_t i = 0; i < shown; ++i) {
    os << hops[i].name << " -> ";
  }
  if (shown < hops.size()) {
    os << "... (" << hops.size() - shown << " more) -> ";
  }
  if (!hops.empty()) os << hops.front().name;
  return os.str();
}

std::string CheckResult::summary() const {
  if (ok()) return "all delivery invariants hold";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

CheckResult check_conservation(const core::Network& network) {
  CheckResult result;
  const auto& fabric = network.fabric();
  const std::int64_t injected =
      static_cast<std::int64_t>(fabric.flits_injected());
  const std::int64_t delivered =
      static_cast<std::int64_t>(fabric.flits_delivered());
  const std::int64_t in_flight = fabric.flits_in_flight();
  if (injected != delivered + in_flight) {
    std::ostringstream os;
    os << "wormhole flit conservation broken: injected=" << injected
       << " delivered=" << delivered << " in-flight=" << in_flight;
    result.violations.push_back(os.str());
  }
  return result;
}

CheckResult check_drained(const core::Network& network) {
  CheckResult result;
  if (!network.quiescent()) {
    result.violations.push_back("network is not quiescent");
    return result;
  }
  const auto* plane = network.control_plane();
  if (plane == nullptr) return result;
  const auto& topo = network.topology();
  const auto& circuits = network.circuits();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (std::int32_t s = 0; s < network.config().router.wave_switches; ++s) {
      const auto& regs = plane->registers(n, s);
      for (PortId p = 0; p < topo.num_ports(); ++p) {
        std::ostringstream os;
        os << "channel (node " << n << ", sw " << s << ", port " << p << ") ";
        switch (regs.status(p)) {
          case pcs::ChannelStatus::kReservedByProbe:
            os << "still reserved by probe " << regs.reserving_probe(p)
               << " after drain";
            result.violations.push_back(os.str());
            break;
          case pcs::ChannelStatus::kBusyCircuit: {
            const CircuitId id = regs.owning_circuit(p);
            if (!circuits.contains(id)) {
              os << "busy with retired circuit " << id;
              result.violations.push_back(os.str());
              break;
            }
            const auto& rec = circuits.at(id);
            if (rec.state != core::CircuitState::kEstablished || rec.in_use) {
              os << "busy with circuit " << id << " in state "
                 << to_string(rec.state) << (rec.in_use ? " (in use)" : "");
              result.violations.push_back(os.str());
            }
            break;
          }
          case pcs::ChannelStatus::kFree:
          case pcs::ChannelStatus::kFaulty:
            break;
        }
      }
    }
  }
  return result;
}

CheckResult check_delivery(const core::Network& network) {
  CheckResult result = check_conservation(network);
  // (src, dest) -> delivered cycle of the previous circuit message.
  std::map<std::pair<NodeId, NodeId>, Cycle> last_circuit_delivery;

  for (const auto& rec : network.messages().all()) {
    std::ostringstream tag;
    tag << "message " << rec.id << " (" << rec.src << "->" << rec.dest
        << ", len " << rec.length << ")";
    if (!rec.done) {
      result.violations.push_back(tag.str() + " was never delivered");
      continue;
    }
    if (rec.mode == core::MessageMode::kUnset) {
      result.violations.push_back(tag.str() + " has no transport mode");
    }
    if (rec.delivered < rec.created) {
      result.violations.push_back(tag.str() + " delivered before creation");
    }
    const bool circuit_mode =
        rec.mode == core::MessageMode::kCircuitHit ||
        rec.mode == core::MessageMode::kCircuitAfterSetup;
    if (circuit_mode) {
      const auto key = std::make_pair(rec.src, rec.dest);
      const auto it = last_circuit_delivery.find(key);
      // The log is in creation order, so a later-created circuit message
      // must not be delivered before an earlier one of the same pair.
      if (it != last_circuit_delivery.end() && rec.delivered < it->second) {
        result.violations.push_back(tag.str() +
                                    " overtook an earlier circuit message");
      }
      last_circuit_delivery[key] =
          std::max(it == last_circuit_delivery.end() ? 0 : it->second,
                   rec.delivered);
    }
  }
  return result;
}

}  // namespace wavesim::verify
