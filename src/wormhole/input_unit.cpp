#include "wormhole/input_unit.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::wh {

InputVc::InputVc(std::int32_t capacity)
    : own_(static_cast<std::size_t>(capacity > 0 ? capacity : 0)),
      capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("InputVc: capacity < 1");
  slots_ = own_.data();
}

InputVc::InputVc(Flit* slots, std::int32_t capacity)
    : slots_(slots), capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("InputVc: capacity < 1");
}

InputVc::InputVc(InputVc&& other) noexcept
    : slots_(other.slots_), own_(std::move(other.own_)),
      capacity_(other.capacity_), head_(other.head_), size_(other.size_),
      state_(other.state_), candidates_(std::move(other.candidates_)),
      out_port_(other.out_port_), out_vc_(other.out_vc_) {
  if (!own_.empty()) slots_ = own_.data();
}

InputVc& InputVc::operator=(InputVc&& other) noexcept {
  slots_ = other.slots_;
  own_ = std::move(other.own_);
  capacity_ = other.capacity_;
  head_ = other.head_;
  size_ = other.size_;
  state_ = other.state_;
  candidates_ = std::move(other.candidates_);
  out_port_ = other.out_port_;
  out_vc_ = other.out_vc_;
  if (!own_.empty()) slots_ = own_.data();
  return *this;
}

void InputVc::push(const Flit& flit) {
  if (full()) throw std::logic_error("InputVc overflow: credit protocol bug");
  std::int32_t tail = head_ + size_;
  if (tail >= capacity_) tail -= capacity_;
  slots_[tail] = flit;
  ++size_;
}

const Flit& InputVc::front() const {
  if (size_ == 0) throw std::logic_error("InputVc::front on empty VC");
  return slots_[head_];
}

Flit InputVc::pop() {
  if (size_ == 0) throw std::logic_error("InputVc::pop on empty VC");
  Flit f = slots_[head_];
  if (++head_ == capacity_) head_ = 0;
  --size_;
  return f;
}

void InputVc::start_routing(std::vector<route::RouteCandidate> candidates) {
  if (state_ != VcState::kIdle) {
    throw std::logic_error("InputVc::start_routing while not idle");
  }
  candidates_ = std::move(candidates);
  state_ = VcState::kRouting;
}

void InputVc::start_routing(const route::RouteCandidate* candidates,
                            std::size_t count) {
  if (state_ != VcState::kIdle) {
    throw std::logic_error("InputVc::start_routing while not idle");
  }
  candidates_.assign(candidates, candidates + count);
  state_ = VcState::kRouting;
}

void InputVc::activate(PortId out_port, VcId out_vc) {
  if (state_ != VcState::kRouting) {
    throw std::logic_error("InputVc::activate while not routing");
  }
  out_port_ = out_port;
  out_vc_ = out_vc;
  state_ = VcState::kActive;
  candidates_.clear();
}

void InputVc::snap(snap::Archive& ar) {
  std::int32_t n = size_;
  ar.pod(n);
  if (ar.writing()) {
    for (std::int32_t i = 0; i < size_; ++i) {
      std::int32_t pos = head_ + i;
      if (pos >= capacity_) pos -= capacity_;
      snap_flit(ar, slots_[pos]);
    }
  } else {
    if (n < 0 || n > capacity_) {
      throw snap::ArchiveError("InputVc: snapshot occupancy out of range");
    }
    head_ = 0;
    size_ = n;
    for (std::int32_t i = 0; i < n; ++i) snap_flit(ar, slots_[i]);
  }
  ar.pod(state_);
  ar.vec(candidates_, [](snap::Archive& a, route::RouteCandidate& c) {
    a.pod(c.port);
    a.pod(c.vc);
    a.pod(c.escape);
  });
  ar.pod(out_port_);
  ar.pod(out_vc_);
}

void InputVc::release() {
  if (state_ != VcState::kActive) {
    throw std::logic_error("InputVc::release while not active");
  }
  state_ = VcState::kIdle;
  out_port_ = kInvalidPort;
  out_vc_ = kInvalidVc;
}

}  // namespace wavesim::wh
