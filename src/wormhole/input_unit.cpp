#include "wormhole/input_unit.hpp"

#include <stdexcept>

namespace wavesim::wh {

InputVc::InputVc(std::int32_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("InputVc: capacity < 1");
}

void InputVc::push(const Flit& flit) {
  if (full()) throw std::logic_error("InputVc overflow: credit protocol bug");
  buffer_.push_back(flit);
}

const Flit& InputVc::front() const {
  if (buffer_.empty()) throw std::logic_error("InputVc::front on empty VC");
  return buffer_.front();
}

Flit InputVc::pop() {
  if (buffer_.empty()) throw std::logic_error("InputVc::pop on empty VC");
  Flit f = buffer_.front();
  buffer_.pop_front();
  return f;
}

void InputVc::start_routing(std::vector<route::RouteCandidate> candidates) {
  if (state_ != VcState::kIdle) {
    throw std::logic_error("InputVc::start_routing while not idle");
  }
  candidates_ = std::move(candidates);
  state_ = VcState::kRouting;
}

void InputVc::activate(PortId out_port, VcId out_vc) {
  if (state_ != VcState::kRouting) {
    throw std::logic_error("InputVc::activate while not routing");
  }
  out_port_ = out_port;
  out_vc_ = out_vc;
  state_ = VcState::kActive;
  candidates_.clear();
}

void InputVc::release() {
  if (state_ != VcState::kActive) {
    throw std::logic_error("InputVc::release while not active");
  }
  state_ = VcState::kIdle;
  out_port_ = kInvalidPort;
  out_vc_ = kInvalidVc;
}

}  // namespace wavesim::wh
