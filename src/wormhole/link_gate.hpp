// Per-cycle physical-link bandwidth sharing between the wormhole data VCs
// and the PCS control VCs that live on the same S0 physical channel
// (paper section 2: each physical channel is split into k + w virtual
// channels). The control plane steps first each cycle and claims the links
// it uses; the wormhole switch allocator then skips claimed links.
#pragma once

#include <vector>

#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace wavesim::wh {

class LinkGate {
 public:
  virtual ~LinkGate() = default;
  /// Claim one flit-time on the link leaving `node` through `port` this
  /// cycle. Returns false if the link is already spoken for.
  virtual bool try_acquire(NodeId node, PortId port) = 0;
};

/// Default gate: every link carries one flit per cycle, no sharing.
class ExclusiveLinkGate final : public LinkGate {
 public:
  explicit ExclusiveLinkGate(const topo::KAryNCube& topology)
      : used_(topology.num_channels(), 0), topology_(&topology) {}

  /// Call at the start of every cycle.
  void reset() noexcept { std::fill(used_.begin(), used_.end(), 0); }

  /// Reset only the channels of nodes [begin, end) — the owner-partitioned
  /// per-cycle reset used inside a lookahead window, where each shard
  /// clears its own claims between its local cycles (channel indices of a
  /// contiguous node range are contiguous).
  void reset_nodes(NodeId begin, NodeId end) noexcept {
    const std::size_t lo = topology_->channel_index(begin, 0);
    const std::size_t hi = topology_->channel_index(end, 0);
    std::fill(used_.begin() + lo, used_.begin() + hi, 0);
  }

  bool try_acquire(NodeId node, PortId port) override {
    auto& slot = used_[topology_->channel_index(node, port)];
    if (slot != 0) return false;
    slot = 1;
    return true;
  }

  bool in_use(NodeId node, PortId port) const {
    return used_[topology_->channel_index(node, port)] != 0;
  }

 private:
  /// Per-channel claims, owner-partitioned: a shard only acquires/resets
  /// channels leaving the nodes it owns. [shard: owned]
  std::vector<std::uint8_t> used_;
  const topo::KAryNCube* topology_;  // [shard: ro]
};

}  // namespace wavesim::wh
