#include "wormhole/router.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::wh {

Router::Router(const topo::KAryNCube& topology,
               const route::RoutingAlgorithm& routing, NodeId node,
               const RouterParams& params)
    : topology_(topology), routing_(routing), node_(node), params_(params),
      network_ports_(topology.num_ports()),
      va_arbiter_((topology.num_ports() + 1) * params.num_vcs) {
  if (params.num_vcs < 1 || params.vc_buffer_depth < 1) {
    throw std::invalid_argument("Router: bad params");
  }
  const std::int32_t total_vcs = (network_ports_ + 1) * params_.num_vcs;
  flit_arena_.resize(static_cast<std::size_t>(total_vcs) *
                     params_.vc_buffer_depth);
  inputs_.reserve(total_vcs);
  outputs_.reserve(total_vcs);
  for (std::int32_t i = 0; i < total_vcs; ++i) {
    inputs_.emplace_back(
        flit_arena_.data() +
            static_cast<std::size_t>(i) * params_.vc_buffer_depth,
        params_.vc_buffer_depth);
    OutputVc out;
    // Network outputs start with a full window of downstream credits;
    // the ejection port never blocks (delivery buffers are the NI's
    // responsibility and are modeled as always-accepting).
    out.credits = params_.vc_buffer_depth;
    outputs_.push_back(out);
  }
  switch_arbiters_.reserve(network_ports_ + 1);
  for (PortId p = 0; p <= network_ports_; ++p) {
    switch_arbiters_.emplace_back(total_vcs);
  }
}

void Router::check_port_vc(PortId port, VcId vc) const {
  if (port < 0 || port > network_ports_ || vc < 0 || vc >= params_.num_vcs) {
    throw std::out_of_range("Router: port/vc out of range");
  }
}

const InputVc& Router::input_vc(PortId port, VcId vc) const {
  check_port_vc(port, vc);
  return inputs_[flat(port, vc)];
}

InputVc& Router::input_vc_mut(PortId port, VcId vc) {
  check_port_vc(port, vc);
  return inputs_[flat(port, vc)];
}

Router::OutputVc& Router::output_vc(PortId port, VcId vc) {
  check_port_vc(port, vc);
  return outputs_[flat(port, vc)];
}

const Router::OutputVc& Router::output_vc(PortId port, VcId vc) const {
  check_port_vc(port, vc);
  return outputs_[flat(port, vc)];
}

bool Router::output_exists(PortId port) const {
  if (port == local_port()) return true;
  return topology_.has_neighbor(node_, port);
}

bool Router::can_accept(PortId port, VcId vc) const {
  return !input_vc(port, vc).full();
}

void Router::receive(PortId port, VcId vc, const Flit& flit) {
  InputVc& in = input_vc_mut(port, vc);
  if (in.state() == VcState::kIdle && in.empty()) ++route_pending_;
  in.push(flit);
  ++occupancy_;
}

void Router::credit_return(PortId out_port, VcId out_vc) {
  OutputVc& out = output_vc(out_port, out_vc);
  if (out.credits >= params_.vc_buffer_depth) {
    throw std::logic_error("Router: credit overflow");
  }
  ++out.credits;
}

std::int32_t Router::credits(PortId out_port, VcId out_vc) const {
  return output_vc(out_port, out_vc).credits;
}

bool Router::output_allocated(PortId out_port, VcId out_vc) const {
  return output_vc(out_port, out_vc).allocated;
}

void Router::switch_allocate(LinkGate& gate, std::vector<SwitchMove>& moves) {
  if (active_vcs_ == 0) return;  // no grant possible, arbiters unmoved
  const std::int32_t vcs = params_.num_vcs;
  for (PortId out_port = 0; out_port <= network_ports_; ++out_port) {
    const bool eject = out_port == local_port();
    switch_arbiters_[out_port].grant_first([&](std::int32_t slot) {
      InputVc& in = inputs_[slot];
      if (in.state() != VcState::kActive || in.out_port() != out_port) {
        return false;
      }
      if (in.empty()) return false;
      OutputVc& out = outputs_[flat(out_port, in.out_vc())];
      if (!eject && out.credits <= 0) return false;
      // One flit per physical link per cycle, shared with control VCs.
      if (!eject && !gate.try_acquire(node_, out_port)) return false;
      SwitchMove move;
      move.in_port = slot / vcs;
      move.in_vc = slot % vcs;
      move.out_port = out_port;
      move.out_vc = in.out_vc();
      move.flit = in.pop();
      --occupancy_;
      move.eject = eject;
      if (!eject) --out.credits;
      if (move.flit.tail) {
        out.allocated = false;
        out.holder_port = kInvalidPort;
        out.holder_vc = kInvalidVc;
        in.release();
        --active_vcs_;
        --nonidle_vcs_;
        if (!in.empty()) ++route_pending_;  // next packet's head buffered
      }
      moves.push_back(move);
      return true;
    });
  }
}

std::vector<SwitchMove> Router::switch_allocate(LinkGate& gate) {
  std::vector<SwitchMove> moves;
  switch_allocate(gate, moves);
  return moves;
}

bool Router::try_allocate_vc(std::int32_t slot) {
  InputVc& in = inputs_[slot];
  if (in.state() != VcState::kRouting) return false;
  for (const auto& cand : in.candidates()) {
    if (!output_exists(cand.port)) continue;
    OutputVc& out = outputs_[flat(cand.port, cand.vc)];
    if (out.allocated) continue;
    out.allocated = true;
    out.holder_port = slot / params_.num_vcs;
    out.holder_vc = slot % params_.num_vcs;
    in.activate(cand.port, cand.vc);
    --routing_vcs_;
    ++active_vcs_;
    return true;
  }
  return false;
}

void Router::vc_allocate() {
  if (routing_vcs_ == 0) return;  // no grant possible, arbiter unmoved
  va_arbiter_.grant_first(
      [&](std::int32_t slot) { return try_allocate_vc(slot); });
  // A single grant per cycle would be too restrictive; sweep the remaining
  // VCs once more in index order so independent outputs can be claimed in
  // the same cycle (the arbiter above only rotates fairness for the first
  // grant, which is the contended one).
  if (routing_vcs_ == 0) return;
  const std::int32_t total = static_cast<std::int32_t>(inputs_.size());
  for (std::int32_t slot = 0; slot < total; ++slot) {
    try_allocate_vc(slot);
  }
}

void Router::route_compute() {
  if (route_pending_ == 0) return;
  const std::int32_t total = static_cast<std::int32_t>(inputs_.size());
  for (std::int32_t slot = 0; slot < total; ++slot) {
    InputVc& in = inputs_[slot];
    if (in.state() != VcState::kIdle || in.empty()) continue;
    const Flit& head = in.front();
    if (!head.head) {
      throw std::logic_error("Router: body flit at front of idle VC");
    }
    if (head.dest == node_) {
      cand_scratch_.clear();
      for (VcId v = 0; v < params_.num_vcs; ++v) {
        cand_scratch_.push_back(
            route::RouteCandidate{local_port(), v, /*escape=*/true});
      }
      in.start_routing(cand_scratch_.data(), cand_scratch_.size());
    } else {
      const PortId in_port = slot / params_.num_vcs;
      const VcId in_vc = slot % params_.num_vcs;
      const auto candidates = routing_.route(
          node_, in_port == local_port() ? kInvalidPort : in_port, in_vc,
          head.dest);
      if (candidates.empty()) {
        throw std::logic_error("Router: routing returned no candidates");
      }
      in.start_routing(candidates.data(), candidates.size());
    }
    --route_pending_;
    ++routing_vcs_;
    ++nonidle_vcs_;
  }
}

void Router::snap(snap::Archive& ar) {
  for (InputVc& in : inputs_) in.snap(ar);
  for (OutputVc& out : outputs_) {
    ar.pod(out.allocated);
    ar.pod(out.holder_port);
    ar.pod(out.holder_vc);
    ar.pod(out.credits);
  }
  for (RoundRobinArbiter& arb : switch_arbiters_) arb.snap(ar);
  va_arbiter_.snap(ar);
  ar.pod(occupancy_);
  ar.pod(nonidle_vcs_);
  ar.pod(active_vcs_);
  ar.pod(routing_vcs_);
  ar.pod(route_pending_);
}

}  // namespace wavesim::wh
