#include "wormhole/router.hpp"

#include <stdexcept>

namespace wavesim::wh {

Router::Router(const topo::KAryNCube& topology,
               const route::RoutingAlgorithm& routing, NodeId node,
               const RouterParams& params)
    : topology_(topology), routing_(routing), node_(node), params_(params),
      network_ports_(topology.num_ports()),
      va_arbiter_((network_ports_ + 1) * params.num_vcs) {
  if (params.num_vcs < 1 || params.vc_buffer_depth < 1) {
    throw std::invalid_argument("Router: bad params");
  }
  inputs_.reserve(network_ports_ + 1);
  outputs_.reserve(network_ports_ + 1);
  for (PortId p = 0; p <= network_ports_; ++p) {
    inputs_.emplace_back();
    outputs_.emplace_back();
    for (VcId v = 0; v < params.num_vcs; ++v) {
      inputs_.back().emplace_back(params.vc_buffer_depth);
      OutputVc out;
      // Network outputs start with a full window of downstream credits;
      // the ejection port never blocks (delivery buffers are the NI's
      // responsibility and are modeled as always-accepting).
      out.credits = params.vc_buffer_depth;
      outputs_.back().push_back(out);
    }
    switch_arbiters_.emplace_back((network_ports_ + 1) * params.num_vcs);
  }
}

const InputVc& Router::input_vc(PortId port, VcId vc) const {
  return inputs_.at(port).at(vc);
}

InputVc& Router::input_vc_mut(PortId port, VcId vc) {
  return inputs_.at(port).at(vc);
}

Router::OutputVc& Router::output_vc(PortId port, VcId vc) {
  return outputs_.at(port).at(vc);
}

const Router::OutputVc& Router::output_vc(PortId port, VcId vc) const {
  return outputs_.at(port).at(vc);
}

bool Router::output_exists(PortId port) const {
  if (port == local_port()) return true;
  return topology_.has_neighbor(node_, port);
}

bool Router::can_accept(PortId port, VcId vc) const {
  return !input_vc(port, vc).full();
}

void Router::receive(PortId port, VcId vc, const Flit& flit) {
  input_vc_mut(port, vc).push(flit);
}

void Router::credit_return(PortId out_port, VcId out_vc) {
  auto& out = output_vc(out_port, out_vc);
  if (out.credits >= params_.vc_buffer_depth) {
    throw std::logic_error("Router: credit overflow");
  }
  ++out.credits;
}

std::int32_t Router::credits(PortId out_port, VcId out_vc) const {
  return output_vc(out_port, out_vc).credits;
}

bool Router::output_allocated(PortId out_port, VcId out_vc) const {
  return output_vc(out_port, out_vc).allocated;
}

std::vector<SwitchMove> Router::switch_allocate(LinkGate& gate) {
  std::vector<SwitchMove> moves;
  const std::int32_t vcs = params_.num_vcs;
  for (PortId out_port = 0; out_port <= network_ports_; ++out_port) {
    const bool eject = out_port == local_port();
    bool link_claimed = false;
    switch_arbiters_[out_port].grant_first([&](std::int32_t slot) {
      const PortId in_port = slot / vcs;
      const VcId in_vc = slot % vcs;
      InputVc& in = inputs_[in_port][in_vc];
      if (in.state() != VcState::kActive || in.out_port() != out_port) {
        return false;
      }
      if (in.empty()) return false;
      OutputVc& out = output_vc(out_port, in.out_vc());
      if (!eject && out.credits <= 0) return false;
      // One flit per physical link per cycle, shared with control VCs.
      if (!eject && !gate.try_acquire(node_, out_port)) {
        link_claimed = true;
        return false;
      }
      SwitchMove move;
      move.in_port = in_port;
      move.in_vc = in_vc;
      move.out_port = out_port;
      move.out_vc = in.out_vc();
      move.flit = in.pop();
      move.eject = eject;
      if (!eject) --out.credits;
      if (move.flit.tail) {
        out.allocated = false;
        out.holder_port = kInvalidPort;
        out.holder_vc = kInvalidVc;
        in.release();
      }
      moves.push_back(move);
      return true;
    });
    (void)link_claimed;
  }
  return moves;
}

void Router::vc_allocate() {
  const std::int32_t vcs = params_.num_vcs;
  va_arbiter_.grant_first([&](std::int32_t slot) {
    const PortId in_port = slot / vcs;
    const VcId in_vc = slot % vcs;
    InputVc& in = inputs_[in_port][in_vc];
    if (in.state() != VcState::kRouting) return false;
    for (const auto& cand : in.candidates()) {
      if (!output_exists(cand.port)) continue;
      OutputVc& out = output_vc(cand.port, cand.vc);
      if (out.allocated) continue;
      out.allocated = true;
      out.holder_port = in_port;
      out.holder_vc = in_vc;
      in.activate(cand.port, cand.vc);
      return true;  // advance arbiter pointer past the winner
    }
    return false;
  });
  // A single grant per cycle would be too restrictive; sweep the remaining
  // VCs once more in index order so independent outputs can be claimed in
  // the same cycle (the arbiter above only rotates fairness for the first
  // grant, which is the contended one).
  for (PortId in_port = 0; in_port <= network_ports_; ++in_port) {
    for (VcId in_vc = 0; in_vc < vcs; ++in_vc) {
      InputVc& in = inputs_[in_port][in_vc];
      if (in.state() != VcState::kRouting) continue;
      for (const auto& cand : in.candidates()) {
        if (!output_exists(cand.port)) continue;
        OutputVc& out = output_vc(cand.port, cand.vc);
        if (out.allocated) continue;
        out.allocated = true;
        out.holder_port = in_port;
        out.holder_vc = in_vc;
        in.activate(cand.port, cand.vc);
        break;
      }
    }
  }
}

void Router::route_compute() {
  for (PortId in_port = 0; in_port <= network_ports_; ++in_port) {
    for (VcId in_vc = 0; in_vc < params_.num_vcs; ++in_vc) {
      InputVc& in = inputs_[in_port][in_vc];
      if (in.state() != VcState::kIdle || in.empty()) continue;
      const Flit& head = in.front();
      if (!head.head) {
        throw std::logic_error("Router: body flit at front of idle VC");
      }
      std::vector<route::RouteCandidate> candidates;
      if (head.dest == node_) {
        for (VcId v = 0; v < params_.num_vcs; ++v) {
          candidates.push_back(
              route::RouteCandidate{local_port(), v, /*escape=*/true});
        }
      } else {
        candidates = routing_.route(
            node_, in_port == local_port() ? kInvalidPort : in_port, in_vc,
            head.dest);
        if (candidates.empty()) {
          throw std::logic_error("Router: routing returned no candidates");
        }
      }
      in.start_routing(std::move(candidates));
    }
  }
}

std::int64_t Router::buffered_flits() const {
  std::int64_t total = 0;
  for (const auto& port : inputs_) {
    for (const auto& vc : port) total += vc.occupancy();
  }
  return total;
}

}  // namespace wavesim::wh
