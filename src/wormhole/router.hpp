// One wormhole router (paper Fig. 1): per-input-VC buffers, route
// computation, VC allocation, and switch allocation with credit-based flow
// control. The router is topology-agnostic beyond its own port count; the
// Fabric moves flits and credits between routers.
//
// Hot-path layout: input and output VCs live in flat [port * num_vcs + vc]
// arrays and every input buffer is a fixed ring inside one per-router flit
// arena, so a cycle of pipeline work touches a handful of contiguous
// allocations and performs no heap allocation (route candidates for a new
// head are the one per-packet exception, computed by the routing
// algorithm). Live-state counters let each pipeline stage exit immediately
// when it has no work, and quiet() lets the fabric skip the router
// entirely.
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "wormhole/allocator.hpp"
#include "wormhole/flit.hpp"
#include "wormhole/input_unit.hpp"
#include "wormhole/link_gate.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::wh {

struct RouterParams {
  std::int32_t num_vcs = 2;          ///< w, wormhole data VCs per channel
  std::int32_t vc_buffer_depth = 4;  ///< flits per VC buffer
};

/// A flit crossing the switch this cycle, as decided by switch allocation.
struct SwitchMove {
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  PortId out_port = kInvalidPort;
  VcId out_vc = kInvalidVc;
  Flit flit;
  bool eject = false;  ///< out_port is the local ejection port
};

class Router {
 public:
  Router(const topo::KAryNCube& topology,
         const route::RoutingAlgorithm& routing, NodeId node,
         const RouterParams& params);

  NodeId node() const noexcept { return node_; }
  std::int32_t num_vcs() const noexcept { return params_.num_vcs; }
  /// Network ports [0, num_network_ports); local port == num_network_ports
  /// (injection on the input side, ejection on the output side).
  std::int32_t num_network_ports() const noexcept { return network_ports_; }
  PortId local_port() const noexcept { return network_ports_; }

  const InputVc& input_vc(PortId port, VcId vc) const;
  bool can_accept(PortId port, VcId vc) const;
  void receive(PortId port, VcId vc, const Flit& flit);

  /// Downstream buffer freed a slot for (out_port, out_vc).
  void credit_return(PortId out_port, VcId out_vc);
  std::int32_t credits(PortId out_port, VcId out_vc) const;
  bool output_allocated(PortId out_port, VcId out_vc) const;

  /// Pipeline stages, called once per cycle by the Fabric in the order
  /// switch_allocate -> vc_allocate -> route_compute (a head therefore
  /// spends >= 2 cycles of pipeline per hop, plus link latency).
  ///
  /// switch_allocate grants at most one flit per output port, consuming
  /// network-link bandwidth through `gate` (shared with the PCS control
  /// plane); the moves are applied internally (buffers popped, credits
  /// decremented, tail releases) and appended to `moves` for the Fabric
  /// to transport.
  void switch_allocate(LinkGate& gate, std::vector<SwitchMove>& moves);
  /// Convenience wrapper returning the moves by value (tests).
  std::vector<SwitchMove> switch_allocate(LinkGate& gate);
  void vc_allocate();
  void route_compute();

  /// No buffered flits and every input VC idle: a cycle of pipeline work
  /// is a no-op and the fabric may skip this router without changing any
  /// state (round-robin pointers only move on grants, and an all-idle
  /// router grants nothing).
  bool quiet() const noexcept {
    return occupancy_ == 0 && nonidle_vcs_ == 0;
  }

  /// Sum of buffered flits across all input VCs (watchdog / conservation).
  std::int64_t buffered_flits() const noexcept { return occupancy_; }

  /// Serialize buffered flits, pipeline state, arbiter pointers, and the
  /// live-state counters (snapshot/restore). Structural layout (arena,
  /// port/VC counts) comes from construction and is not serialized.
  void snap(snap::Archive& ar);

 private:
  struct OutputVc {
    bool allocated = false;
    PortId holder_port = kInvalidPort;
    VcId holder_vc = kInvalidVc;
    std::int32_t credits = 0;  ///< ignored for the ejection port
  };

  std::int32_t flat(PortId port, VcId vc) const noexcept {
    return port * params_.num_vcs + vc;
  }
  void check_port_vc(PortId port, VcId vc) const;
  InputVc& input_vc_mut(PortId port, VcId vc);
  OutputVc& output_vc(PortId port, VcId vc);
  const OutputVc& output_vc(PortId port, VcId vc) const;
  bool output_exists(PortId port) const;
  bool try_allocate_vc(std::int32_t slot);

  const topo::KAryNCube& topology_;
  const route::RoutingAlgorithm& routing_;
  NodeId node_;  // [snap: skip] identity, fixed at construction
  RouterParams params_;  // [snap: skip] config, fixed at construction
  std::int32_t network_ports_;  // [snap: skip] derived from topology

  /// Backing store for every input VC ring: VC (port, vc) owns the slice
  /// [flat(port, vc) * depth, (flat(port, vc) + 1) * depth).
  /// [snap: skip] structural backing store; the logical ring content
  /// is serialized through inputs_ (InputVc::snap).
  std::vector<Flit> flit_arena_;
  /// [flat(port, vc)], port in [0, network_ports_] (last = injection).
  std::vector<InputVc> inputs_;
  /// [flat(port, vc)], port in [0, network_ports_] (last = ejection).
  std::vector<OutputVc> outputs_;
  std::vector<RoundRobinArbiter> switch_arbiters_;  ///< one per output port
  RoundRobinArbiter va_arbiter_;                    ///< over all input VCs

  // Live-state counters (maintained by the mutators above; see quiet()).
  std::int32_t occupancy_ = 0;      ///< buffered flits across all inputs
  std::int32_t nonidle_vcs_ = 0;    ///< inputs in kRouting or kActive
  std::int32_t active_vcs_ = 0;     ///< inputs in kActive
  std::int32_t routing_vcs_ = 0;    ///< inputs in kRouting
  std::int32_t route_pending_ = 0;  ///< idle inputs with a head buffered

  /// Reused candidate storage for local-delivery heads (no allocation).
  std::vector<route::RouteCandidate> cand_scratch_;  // [snap: skip] dead between calls
};

}  // namespace wavesim::wh
