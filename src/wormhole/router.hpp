// One wormhole router (paper Fig. 1): per-input-VC buffers, route
// computation, VC allocation, and switch allocation with credit-based flow
// control. The router is topology-agnostic beyond its own port count; the
// Fabric moves flits and credits between routers.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "routing/routing.hpp"
#include "wormhole/allocator.hpp"
#include "wormhole/flit.hpp"
#include "wormhole/input_unit.hpp"
#include "wormhole/link_gate.hpp"

namespace wavesim::wh {

struct RouterParams {
  std::int32_t num_vcs = 2;          ///< w, wormhole data VCs per channel
  std::int32_t vc_buffer_depth = 4;  ///< flits per VC buffer
};

/// A flit crossing the switch this cycle, as decided by switch allocation.
struct SwitchMove {
  PortId in_port = kInvalidPort;
  VcId in_vc = kInvalidVc;
  PortId out_port = kInvalidPort;
  VcId out_vc = kInvalidVc;
  Flit flit;
  bool eject = false;  ///< out_port is the local ejection port
};

class Router {
 public:
  Router(const topo::KAryNCube& topology,
         const route::RoutingAlgorithm& routing, NodeId node,
         const RouterParams& params);

  NodeId node() const noexcept { return node_; }
  std::int32_t num_vcs() const noexcept { return params_.num_vcs; }
  /// Network ports [0, num_network_ports); local port == num_network_ports
  /// (injection on the input side, ejection on the output side).
  std::int32_t num_network_ports() const noexcept { return network_ports_; }
  PortId local_port() const noexcept { return network_ports_; }

  const InputVc& input_vc(PortId port, VcId vc) const;
  bool can_accept(PortId port, VcId vc) const;
  void receive(PortId port, VcId vc, const Flit& flit);

  /// Downstream buffer freed a slot for (out_port, out_vc).
  void credit_return(PortId out_port, VcId out_vc);
  std::int32_t credits(PortId out_port, VcId out_vc) const;
  bool output_allocated(PortId out_port, VcId out_vc) const;

  /// Pipeline stages, called once per cycle by the Fabric in the order
  /// switch_allocate -> vc_allocate -> route_compute (a head therefore
  /// spends >= 2 cycles of pipeline per hop, plus link latency).
  ///
  /// switch_allocate grants at most one flit per output port, consuming
  /// network-link bandwidth through `gate` (shared with the PCS control
  /// plane); the moves are applied internally (buffers popped, credits
  /// decremented, tail releases) and returned for the Fabric to transport.
  std::vector<SwitchMove> switch_allocate(LinkGate& gate);
  void vc_allocate();
  void route_compute();

  /// Sum of buffered flits across all input VCs (watchdog / conservation).
  std::int64_t buffered_flits() const;

 private:
  struct OutputVc {
    bool allocated = false;
    PortId holder_port = kInvalidPort;
    VcId holder_vc = kInvalidVc;
    std::int32_t credits = 0;  ///< ignored for the ejection port
  };

  InputVc& input_vc_mut(PortId port, VcId vc);
  OutputVc& output_vc(PortId port, VcId vc);
  const OutputVc& output_vc(PortId port, VcId vc) const;
  bool output_exists(PortId port) const;

  const topo::KAryNCube& topology_;
  const route::RoutingAlgorithm& routing_;
  NodeId node_;
  RouterParams params_;
  std::int32_t network_ports_;

  /// [port][vc], port in [0, network_ports_] (last = injection).
  std::vector<std::vector<InputVc>> inputs_;
  /// [port][vc], port in [0, network_ports_] (last = ejection).
  std::vector<std::vector<OutputVc>> outputs_;
  std::vector<RoundRobinArbiter> switch_arbiters_;  ///< one per output port
  RoundRobinArbiter va_arbiter_;                    ///< over all input VCs
};

}  // namespace wavesim::wh
