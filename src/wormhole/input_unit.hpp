// Per-virtual-channel input state of a wormhole router (paper Fig. 1:
// "Input queues (virtual channels)").
#pragma once

#include <deque>
#include <vector>

#include "routing/routing.hpp"
#include "wormhole/flit.hpp"

namespace wavesim::wh {

/// Lifecycle of one input VC:
///   kIdle      -- empty or waiting for a head flit to reach the front
///   kRouting   -- head at front, candidates computed, awaiting VC alloc
///   kActive    -- output VC held; flits stream through switch allocation
enum class VcState : std::uint8_t { kIdle, kRouting, kActive };

class InputVc {
 public:
  explicit InputVc(std::int32_t capacity);

  std::int32_t capacity() const noexcept { return capacity_; }
  std::int32_t occupancy() const noexcept {
    return static_cast<std::int32_t>(buffer_.size());
  }
  bool full() const noexcept { return occupancy() >= capacity_; }
  bool empty() const noexcept { return buffer_.empty(); }

  /// Enqueue an arriving flit. Caller must have honored credits; overflow
  /// is a simulator bug and throws.
  void push(const Flit& flit);

  const Flit& front() const;
  Flit pop();

  VcState state() const noexcept { return state_; }
  void start_routing(std::vector<route::RouteCandidate> candidates);
  const std::vector<route::RouteCandidate>& candidates() const noexcept {
    return candidates_;
  }
  /// Grant an output VC; transitions kRouting -> kActive.
  void activate(PortId out_port, VcId out_vc);
  /// Tail left; back to kIdle.
  void release();

  PortId out_port() const noexcept { return out_port_; }
  VcId out_vc() const noexcept { return out_vc_; }

 private:
  std::int32_t capacity_;
  std::deque<Flit> buffer_;
  VcState state_ = VcState::kIdle;
  std::vector<route::RouteCandidate> candidates_;
  PortId out_port_ = kInvalidPort;
  VcId out_vc_ = kInvalidVc;
};

}  // namespace wavesim::wh
