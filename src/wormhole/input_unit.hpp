// Per-virtual-channel input state of a wormhole router (paper Fig. 1:
// "Input queues (virtual channels)").
#pragma once

#include <vector>

#include "routing/routing.hpp"
#include "wormhole/flit.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::wh {

/// Lifecycle of one input VC:
///   kIdle      -- empty or waiting for a head flit to reach the front
///   kRouting   -- head at front, candidates computed, awaiting VC alloc
///   kActive    -- output VC held; flits stream through switch allocation
enum class VcState : std::uint8_t { kIdle, kRouting, kActive };

/// Fixed-capacity flit ring. The buffer lives either in the router's flat
/// flit arena (the hot path: every VC of a router shares one contiguous
/// allocation) or, for standalone use in tests, in a small self-owned
/// block. Steady-state operation never allocates.
class InputVc {
 public:
  /// Self-owned storage (unit tests, standalone use).
  explicit InputVc(std::int32_t capacity);
  /// Arena view over `capacity` slots at `slots` (owned by the router).
  InputVc(Flit* slots, std::int32_t capacity);

  InputVc(InputVc&& other) noexcept;
  InputVc& operator=(InputVc&& other) noexcept;
  InputVc(const InputVc&) = delete;
  InputVc& operator=(const InputVc&) = delete;

  std::int32_t capacity() const noexcept { return capacity_; }
  std::int32_t occupancy() const noexcept { return size_; }
  bool full() const noexcept { return size_ >= capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Enqueue an arriving flit. Caller must have honored credits; overflow
  /// is a simulator bug and throws.
  void push(const Flit& flit);

  const Flit& front() const;
  Flit pop();

  VcState state() const noexcept { return state_; }
  void start_routing(std::vector<route::RouteCandidate> candidates);
  /// Allocation-free variant: copies `count` candidates into the reused
  /// internal storage.
  void start_routing(const route::RouteCandidate* candidates,
                     std::size_t count);
  const std::vector<route::RouteCandidate>& candidates() const noexcept {
    return candidates_;
  }
  /// Grant an output VC; transitions kRouting -> kActive.
  void activate(PortId out_port, VcId out_vc);
  /// Tail left; back to kIdle.
  void release();

  PortId out_port() const noexcept { return out_port_; }
  VcId out_vc() const noexcept { return out_vc_; }

  /// Serialize the logical buffer content and pipeline state
  /// (snapshot/restore). The ring is normalized to head_ = 0 on restore;
  /// backing storage (arena vs self-owned) is structural and untouched.
  void snap(snap::Archive& ar);

 private:
  Flit* slots_ = nullptr;
  /// Backing store in self-owned mode only. [snap: skip] structural;
  /// the logical ring content is serialized through slots_.
  std::vector<Flit> own_;
  std::int32_t capacity_;
  std::int32_t head_ = 0;
  std::int32_t size_ = 0;
  VcState state_ = VcState::kIdle;
  std::vector<route::RouteCandidate> candidates_;
  PortId out_port_ = kInvalidPort;
  VcId out_vc_ = kInvalidVc;
};

}  // namespace wavesim::wh
