#include "wormhole/allocator.hpp"

#include <stdexcept>

namespace wavesim::wh {

RoundRobinArbiter::RoundRobinArbiter(std::int32_t size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("RoundRobinArbiter: size <= 0");
}

std::int32_t RoundRobinArbiter::grant(const std::vector<std::uint8_t>& requests) {
  if (static_cast<std::int32_t>(requests.size()) != size_) {
    throw std::invalid_argument("RoundRobinArbiter: request width mismatch");
  }
  return grant_first([&](std::int32_t i) { return requests[i] != 0; });
}

}  // namespace wavesim::wh
