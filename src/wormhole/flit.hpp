// Flow-control digit travelling on the S0 wormhole plane.
#pragma once

#include "sim/types.hpp"
#include "snap/archive.hpp"

namespace wavesim::wh {

struct Flit {
  MessageId msg = kInvalidMessage;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::int32_t seq = 0;        ///< index within the message, 0-based
  std::int32_t length = 0;     ///< total flits in the message
  bool head = false;
  bool tail = false;
  Cycle created_at = 0;        ///< cycle the message was offered by the app

  friend bool operator==(const Flit&, const Flit&) = default;
};

/// Field-by-field flit serialization (the struct has padding, so a raw
/// byte copy would leak indeterminate bytes into the snapshot).
inline void snap_flit(snap::Archive& ar, Flit& f) {
  ar.pod(f.msg);
  ar.pod(f.src);
  ar.pod(f.dest);
  ar.pod(f.seq);
  ar.pod(f.length);
  ar.pod(f.head);
  ar.pod(f.tail);
  ar.pod(f.created_at);
}

/// Build flit `seq` of an L-flit message (single-flit messages are both
/// head and tail).
inline Flit make_flit(MessageId msg, NodeId src, NodeId dest, std::int32_t seq,
                      std::int32_t length, Cycle created_at) {
  Flit f;
  f.msg = msg;
  f.src = src;
  f.dest = dest;
  f.seq = seq;
  f.length = length;
  f.head = seq == 0;
  f.tail = seq == length - 1;
  f.created_at = created_at;
  return f;
}

/// Segmented variant: head/tail mark *packet* boundaries while seq/length
/// stay message-relative (the destination reassembles by flit count).
inline Flit make_packet_flit(MessageId msg, NodeId src, NodeId dest,
                             std::int32_t seq, std::int32_t length,
                             bool packet_head, bool packet_tail,
                             Cycle created_at) {
  Flit f = make_flit(msg, src, dest, seq, length, created_at);
  f.head = packet_head;
  f.tail = packet_tail;
  return f;
}

}  // namespace wavesim::wh
