// Network-level wormhole plane: owns one Router per node plus the flit and
// credit links between them. This is both the S0 plane of the wave
// router and the standalone wormhole baseline (k = 0).
//
// Transport is per-node: each node has a credit inbox ring and a flit
// inbox ring ordered by due cycle, fed by the sequential commit phase (or,
// inside a lookahead window, by the owning shard itself). A per-node
// activity byte records whether the node has any work at all — buffered or
// arriving flits, non-idle VCs, or pending NI injections — so the step
// sweep skips idle nodes with a single byte load instead of running their
// pipeline stages.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/inbox_ring.hpp"
#include "wormhole/router.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::wh {

struct FabricParams {
  RouterParams router;
  /// Cycles a flit spends between leaving one router's switch and entering
  /// the next router's buffer (wire + downstream pipeline front-end).
  Cycle link_latency = 2;
};

/// A credit returning to the upstream router's output VC.
struct Credit {
  NodeId node;
  PortId out_port;
  VcId vc;
};

/// A flit in flight on a physical link, addressed to the downstream
/// router's input buffer.
struct LinkFlit {
  NodeId dest_node;
  PortId in_port;
  VcId vc;
  Flit flit;
};

/// A flit that left the fabric at `node`'s ejection port this cycle.
struct EjectedFlit {
  NodeId node;
  Flit flit;
};

/// Inbox-ring entries: a credit / flit plus the cycle it reaches its
/// destination node.
struct TimedCredit {
  Cycle due;
  Credit credit;
};
struct TimedFlit {
  Cycle due;
  LinkFlit flit;
};

/// Bits of the per-node activity byte (see node_busy()).
inline constexpr std::uint8_t kNodeBusyRouter = 1;  ///< router not quiet
inline constexpr std::uint8_t kNodeBusyInbox = 2;   ///< inbox ring nonempty
inline constexpr std::uint8_t kNodeBusyNi = 4;      ///< NI has injections

/// Sentinel for earliest_flit_due() when the flit inbox is empty.
inline constexpr Cycle kNoDueFlit = std::numeric_limits<Cycle>::max();

/// Per-shard outbox for one cycle's node-local work. Every cross-node
/// effect of stepping nodes [begin, end) is buffered here instead of
/// touching shared state; commit_cycle() drains outboxes in ascending
/// shard order, which — with shards covering contiguous ascending node
/// ranges — reproduces the exact push order of a sequential sweep.
struct ShardIo {
  std::vector<TimedCredit> credits;
  std::vector<TimedFlit> flits;
  std::vector<EjectedFlit> ejected;
  /// Per-node switch-move scratch, reused across nodes (cleared before
  /// each router's switch allocation; never read across nodes).
  std::vector<SwitchMove> moves;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;           ///< flits put on links this cycle
  std::uint64_t flit_arrivals = 0;  ///< flits taken off links this cycle
  bool activity = false;

  void clear() noexcept {
    credits.clear();
    flits.clear();
    ejected.clear();
    moves.clear();
    injected = 0;
    delivered = 0;
    hops = 0;
    flit_arrivals = 0;
    activity = false;
  }
};

class Fabric {
 public:
  /// `gate` may be nullptr, in which case the fabric owns an exclusive
  /// gate (pure wormhole network). The caller keeps ownership otherwise
  /// and must reset it each cycle before step().
  Fabric(const topo::KAryNCube& topology,
         const route::RoutingAlgorithm& routing, const FabricParams& params,
         LinkGate* gate = nullptr);

  const topo::KAryNCube& topology() const noexcept { return topology_; }
  std::int32_t num_vcs() const noexcept { return params_.router.num_vcs; }
  Cycle link_latency() const noexcept { return params_.link_latency; }
  Router& router(NodeId node) { return routers_.at(node); }
  const Router& router(NodeId node) const { return routers_.at(node); }

  /// Injection-side buffer space on (local port, vc) of `node`.
  bool can_inject(NodeId node, VcId vc) const;
  void inject(NodeId node, VcId vc, const Flit& flit);
  /// Shard-phase injection: identical to inject() but counts into the
  /// shard's outbox instead of the shared counter.
  void inject(NodeId node, VcId vc, const Flit& flit, ShardIo& io);

  /// Called once per ejected flit, in delivery order.
  using DeliveryHandler = std::function<void(NodeId node, const Flit& flit)>;
  void set_delivery_handler(DeliveryHandler handler) {
    delivery_ = std::move(handler);
  }

  /// Advance one cycle. When an external gate was supplied, the caller is
  /// responsible for resetting it and stepping higher-priority traffic
  /// (the PCS control plane) first.
  void step(Cycle now);

  // -- sharded stepping ----------------------------------------------------
  // step(now) is exactly begin_cycle + step_nodes over the full node range
  // + commit_cycle; an engine may instead call step_nodes concurrently on
  // disjoint node ranges. step_nodes touches only state owned by its nodes
  // (routers, inbox rings, the activity bytes, the per-source-node link
  // counters and gate channels), so concurrent calls on disjoint ranges
  // are race-free, and buffering all cross-node transport in ShardIo keeps
  // the outcome independent of shard and thread count.

  /// Sequential: reset the owned gate for the new cycle.
  void begin_cycle(Cycle now);
  /// Parallel-safe on disjoint ranges: for every node of [begin, end) with
  /// work, apply due inbox arrivals, then run switch allocation, VC
  /// allocation and route computation, buffering every cross-node effect
  /// into `io`. Nodes whose activity byte is zero are skipped unchanged.
  void step_nodes(Cycle now, NodeId begin, NodeId end, ShardIo& io);
  /// Sequential: absorb one shard's outbox. Must be called once per shard
  /// in ascending shard order; ejected flits are delivered to the handler
  /// here (in node order) when one is installed.
  void commit_cycle(Cycle now, const ShardIo& io);

  // -- lookahead window support --------------------------------------------

  /// Shard-local mid-window commit: move the entries of `io` destined to
  /// nodes [begin, end) — the calling shard's own range — into their inbox
  /// rings and drop them from `io`, leaving cross-shard entries for the
  /// barrier commit. Owner-partitioned writes only.
  void commit_shard_local(NodeId begin, NodeId end, ShardIo& io);

  /// The per-node activity byte (kNodeBusy* bits); 0 = stepping the node
  /// would be a no-op.
  std::uint8_t node_busy(NodeId node) const { return node_busy_[node]; }
  bool ni_work(NodeId node) const {
    return (node_busy_[node] & kNodeBusyNi) != 0;
  }
  /// Record whether `node`'s interface has pending injections. Called by
  /// the owning shard (or sequential phases) only.
  void set_ni_work(NodeId node, bool work) {
    if (work) {
      node_busy_[node] |= kNodeBusyNi;
    } else {
      node_busy_[node] &= static_cast<std::uint8_t>(~kNodeBusyNi);
    }
  }
  /// Any node of [begin, end) with a nonzero activity byte?
  bool any_work(NodeId begin, NodeId end) const;
  /// Due cycle of the earliest queued flit arrival at `node`
  /// (kNoDueFlit when none) — lookahead horizon input.
  Cycle earliest_flit_due(NodeId node) const {
    return flit_in_[node].empty() ? kNoDueFlit : flit_in_[node].front().due;
  }

  // -- statistics / invariants -------------------------------------------
  std::uint64_t flits_delivered() const noexcept { return flits_delivered_; }
  std::uint64_t flits_injected() const noexcept { return flits_injected_; }
  std::uint64_t link_flit_hops() const noexcept { return link_flit_hops_; }
  /// Flits that traversed the physical link leaving `node` through `port`.
  std::uint64_t link_flits(NodeId node, PortId port) const {
    return link_flits_.at(topology_.channel_index(node, port));
  }
  /// Highest per-link utilization (flits per cycle) over `elapsed` cycles.
  double max_link_utilization(Cycle elapsed) const;
  /// Flits currently inside routers or on links (conservation checks).
  std::int64_t flits_in_flight() const noexcept {
    return flits_on_links_ + flits_buffered_;
  }
  /// Cycle of the most recent flit movement anywhere in the plane
  /// (progress watchdog input).
  Cycle last_activity() const noexcept { return last_activity_; }

  /// Serialize routers, inbox rings, activity bytes, and the transport
  /// counters (snapshot/restore). The delivery handler, gate claims
  /// (reset every cycle), and scratch outbox are not state.
  void snap(snap::Archive& ar);

 private:
  // Shard-safety tags (docs/ENGINE.md, enforced by tools/shardlint.py).
  const topo::KAryNCube& topology_;  // [shard: ro]
  FabricParams params_;  // [shard: ro] [snap: skip] config, fixed at construction
  std::vector<Router> routers_;      // [shard: owned]
  /// [shard: seq] [snap: skip] claims are mid-step scratch, released
  /// at the quiesce seam (docs/ENGINE.md).
  std::unique_ptr<ExclusiveLinkGate> owned_gate_;
  /// Claims are owner-partitioned over source channels. [shard: owned]
  LinkGate* gate_;  // [snap: skip] wiring; claim state is mid-step scratch
  bool gate_is_owned_;  // [shard: ro] [snap: skip] structural, fixed at construction
  /// Per-node arrival rings. Pushed by the sequential commit (or by the
  /// owning shard mid-window), popped by the owning shard. [shard: owned]
  std::vector<sim::InboxRing<TimedCredit>> credit_in_;
  /// [shard: owned]
  std::vector<sim::InboxRing<TimedFlit>> flit_in_;
  /// Activity byte per node; owner-written in the shard phase (router and
  /// inbox bits recomputed after stepping, NI bit via set_ni_work), and
  /// commit-written for arrival destinations. [shard: owned]
  std::vector<std::uint8_t> node_busy_;
  /// For the sequential step(). [shard: seq] [snap: skip] mid-step
  /// scratch, drained at the quiesce seam.
  ShardIo scratch_io_;
  DeliveryHandler delivery_;  // [shard: seq] [snap: skip] callback wiring
  std::uint64_t flits_delivered_ = 0;  // [shard: seq]
  std::uint64_t flits_injected_ = 0;   // [shard: seq]
  std::uint64_t link_flit_hops_ = 0;   // [shard: seq]
  /// Per unidirectional channel, owner-partitioned: node n only counts
  /// channels leaving n. [shard: owned]
  std::vector<std::uint64_t> link_flits_;
  /// Flits inside inbox rings / router buffers; maintained at commit from
  /// the outbox counters, so flits_in_flight() is O(1). [shard: seq]
  std::int64_t flits_on_links_ = 0;
  std::int64_t flits_buffered_ = 0;  // [shard: seq]
  Cycle last_activity_ = 0;          // [shard: seq]
};

}  // namespace wavesim::wh
