// Network-level wormhole plane: owns one Router per node plus the flit and
// credit delay lines between them. This is both the S0 plane of the wave
// router and the standalone wormhole baseline (k = 0).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/delay_line.hpp"
#include "wormhole/router.hpp"

namespace wavesim::wh {

struct FabricParams {
  RouterParams router;
  /// Cycles a flit spends between leaving one router's switch and entering
  /// the next router's buffer (wire + downstream pipeline front-end).
  Cycle link_latency = 2;
};

/// A credit returning to the upstream router's output VC.
struct Credit {
  NodeId node;
  PortId out_port;
  VcId vc;
};

/// A flit in flight on a physical link, addressed to the downstream
/// router's input buffer.
struct LinkFlit {
  NodeId dest_node;
  PortId in_port;
  VcId vc;
  Flit flit;
};

/// A flit that left the fabric at `node`'s ejection port this cycle.
struct EjectedFlit {
  NodeId node;
  Flit flit;
};

/// Per-shard outbox for one cycle's node-local work. Every cross-node
/// effect of stepping nodes [begin, end) is buffered here instead of
/// touching shared state; commit_cycle() drains outboxes in ascending
/// shard order, which — with shards covering contiguous ascending node
/// ranges — reproduces the exact push order of a sequential sweep.
struct ShardIo {
  std::vector<Credit> credits;
  std::vector<LinkFlit> flits;
  std::vector<EjectedFlit> ejected;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;
  bool activity = false;

  void clear() noexcept {
    credits.clear();
    flits.clear();
    ejected.clear();
    injected = 0;
    delivered = 0;
    hops = 0;
    activity = false;
  }
};

class Fabric {
 public:
  /// `gate` may be nullptr, in which case the fabric owns an exclusive
  /// gate (pure wormhole network). The caller keeps ownership otherwise
  /// and must reset it each cycle before step().
  Fabric(const topo::KAryNCube& topology,
         const route::RoutingAlgorithm& routing, const FabricParams& params,
         LinkGate* gate = nullptr);

  const topo::KAryNCube& topology() const noexcept { return topology_; }
  std::int32_t num_vcs() const noexcept { return params_.router.num_vcs; }
  Router& router(NodeId node) { return *routers_.at(node); }
  const Router& router(NodeId node) const { return *routers_.at(node); }

  /// Injection-side buffer space on (local port, vc) of `node`.
  bool can_inject(NodeId node, VcId vc) const;
  void inject(NodeId node, VcId vc, const Flit& flit);
  /// Shard-phase injection: identical to inject() but counts into the
  /// shard's outbox instead of the shared counter.
  void inject(NodeId node, VcId vc, const Flit& flit, ShardIo& io);

  /// Called once per ejected flit, in delivery order.
  using DeliveryHandler = std::function<void(NodeId node, const Flit& flit)>;
  void set_delivery_handler(DeliveryHandler handler) {
    delivery_ = std::move(handler);
  }

  /// Advance one cycle. When an external gate was supplied, the caller is
  /// responsible for resetting it and stepping higher-priority traffic
  /// (the PCS control plane) first.
  void step(Cycle now);

  // -- sharded stepping ----------------------------------------------------
  // step(now) is exactly begin_cycle + step_nodes over the full node range
  // + commit_cycle; an engine may instead call step_nodes concurrently on
  // disjoint node ranges. step_nodes touches only state owned by its nodes
  // (router objects, the per-source-node link counters and gate channels),
  // so concurrent calls on disjoint ranges are race-free, and buffering all
  // cross-node transport in ShardIo keeps the outcome independent of shard
  // and thread count.

  /// Sequential: reset the owned gate and pop this cycle's delay-line
  /// arrivals into per-cycle staging (no router is touched yet).
  void begin_cycle(Cycle now);
  /// Parallel-safe on disjoint ranges: apply staged arrivals to the
  /// routers of [begin, end), then run switch allocation, VC allocation
  /// and route computation for those routers, buffering every cross-node
  /// effect into `io`.
  void step_nodes(Cycle now, NodeId begin, NodeId end, ShardIo& io);
  /// Sequential: absorb one shard's outbox. Must be called once per shard
  /// in ascending shard order; ejected flits are delivered to the handler
  /// here (in node order) when one is installed.
  void commit_cycle(Cycle now, const ShardIo& io);

  // -- statistics / invariants -------------------------------------------
  std::uint64_t flits_delivered() const noexcept { return flits_delivered_; }
  std::uint64_t flits_injected() const noexcept { return flits_injected_; }
  std::uint64_t link_flit_hops() const noexcept { return link_flit_hops_; }
  /// Flits that traversed the physical link leaving `node` through `port`.
  std::uint64_t link_flits(NodeId node, PortId port) const {
    return link_flits_.at(topology_.channel_index(node, port));
  }
  /// Highest per-link utilization (flits per cycle) over `elapsed` cycles.
  double max_link_utilization(Cycle elapsed) const;
  /// Flits currently inside routers or on links (conservation checks).
  std::int64_t flits_in_flight() const;
  /// Cycle of the most recent flit movement anywhere in the plane
  /// (progress watchdog input).
  Cycle last_activity() const noexcept { return last_activity_; }

 private:
  // Shard-safety tags (docs/ENGINE.md, enforced by tools/shardlint.py).
  const topo::KAryNCube& topology_;               // [shard: ro]
  FabricParams params_;                           // [shard: ro]
  std::vector<std::unique_ptr<Router>> routers_;  // [shard: owned]
  std::unique_ptr<ExclusiveLinkGate> owned_gate_;  // [shard: seq]
  /// Claims are owner-partitioned over source channels. [shard: owned]
  LinkGate* gate_;
  bool gate_is_owned_;                  // [shard: ro]
  sim::DelayLine<LinkFlit> flit_line_;  // [shard: seq]
  sim::DelayLine<Credit> credit_line_;  // [shard: seq]
  /// This cycle's delay-line arrivals, staged by begin_cycle() and read
  /// (filtered by node ownership, never written) from step_nodes().
  std::vector<Credit> staged_credits_;  // [shard: seq]
  std::vector<LinkFlit> staged_flits_;  // [shard: seq]
  ShardIo scratch_io_;  ///< for the sequential step() [shard: seq]
  DeliveryHandler delivery_;           // [shard: seq]
  std::uint64_t flits_delivered_ = 0;  // [shard: seq]
  std::uint64_t flits_injected_ = 0;   // [shard: seq]
  std::uint64_t link_flit_hops_ = 0;   // [shard: seq]
  /// Per unidirectional channel, owner-partitioned: node n only counts
  /// channels leaving n. [shard: owned]
  std::vector<std::uint64_t> link_flits_;
  Cycle last_activity_ = 0;  // [shard: seq]
};

}  // namespace wavesim::wh
