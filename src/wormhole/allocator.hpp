// Round-robin arbitration primitives used by the router's VC and switch
// allocation stages.
#pragma once

#include <cstdint>
#include <vector>

#include "snap/archive.hpp"

namespace wavesim::wh {

/// Rotating-priority arbiter over `size` requesters. grant() scans from the
/// slot after the previous winner, returning the first requesting index and
/// advancing the pointer (strong fairness under persistent requests).
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::int32_t size);

  std::int32_t size() const noexcept { return size_; }

  /// `requests[i] != 0` means slot i wants the grant. Returns winner index
  /// or -1 when nobody requests.
  std::int32_t grant(const std::vector<std::uint8_t>& requests);

  /// Convenience: iterate slots in current priority order, calling
  /// `try_slot(i)`; the first slot returning true wins (pointer advances).
  template <typename Fn>
  std::int32_t grant_first(Fn&& try_slot) {
    for (std::int32_t n = 0; n < size_; ++n) {
      const std::int32_t i = (pointer_ + n) % size_;
      if (try_slot(i)) {
        pointer_ = (i + 1) % size_;
        return i;
      }
    }
    return -1;
  }

  /// Serialize the rotating pointer (snapshot/restore); size_ is
  /// structural and comes from construction.
  void snap(snap::Archive& ar) { ar.pod(pointer_); }

 private:
  std::int32_t size_;  // [snap: skip] capacity, fixed at construction
  std::int32_t pointer_ = 0;
};

}  // namespace wavesim::wh
