#include "wormhole/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::wh {

Fabric::Fabric(const topo::KAryNCube& topology,
               const route::RoutingAlgorithm& routing,
               const FabricParams& params, LinkGate* gate)
    : topology_(topology), params_(params), gate_(gate),
      gate_is_owned_(gate == nullptr),
      credit_in_(topology.num_nodes()),
      flit_in_(topology.num_nodes()),
      node_busy_(topology.num_nodes(), 0),
      link_flits_(topology.num_channels(), 0) {
  if (params.link_latency < 1) {
    throw std::invalid_argument("Fabric: link_latency must be >= 1");
  }
  if (gate_is_owned_) {
    owned_gate_ = std::make_unique<ExclusiveLinkGate>(topology);
    gate_ = owned_gate_.get();
  }
  routers_.reserve(topology.num_nodes());
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    routers_.emplace_back(topology, routing, n, params.router);
  }
}

bool Fabric::can_inject(NodeId node, VcId vc) const {
  const Router& r = router(node);
  return r.can_accept(r.local_port(), vc);
}

void Fabric::inject(NodeId node, VcId vc, const Flit& flit) {
  Router& r = router(node);
  r.receive(r.local_port(), vc, flit);
  node_busy_[node] |= kNodeBusyRouter;
  ++flits_injected_;
  ++flits_buffered_;
}

void Fabric::inject(NodeId node, VcId vc, const Flit& flit, ShardIo& io) {
  Router& r = router(node);
  r.receive(r.local_port(), vc, flit);
  node_busy_[node] |= kNodeBusyRouter;
  ++io.injected;
}

void Fabric::begin_cycle(Cycle /*now*/) {
  if (gate_is_owned_) owned_gate_->reset();
}

void Fabric::step_nodes(Cycle now, NodeId begin, NodeId end, ShardIo& io) {
  for (NodeId n = begin; n < end; ++n) {
    const std::uint8_t busy = node_busy_[n];
    if (busy == 0) continue;  // state-identical skip: see Router::quiet()
    Router& r = routers_[n];

    // 1. Apply this cycle's arrivals — credits first, then flits, each in
    //    ring (= sequential push) order, exactly like a sequential drain
    //    of the old global delay lines restricted to this node.
    auto& credits_in = credit_in_[n];
    while (!credits_in.empty() && credits_in.front().due <= now) {
      const Credit& c = credits_in.front().credit;
      r.credit_return(c.out_port, c.vc);
      credits_in.pop_front();
    }
    auto& flits_in = flit_in_[n];
    while (!flits_in.empty() && flits_in.front().due <= now) {
      const LinkFlit& lf = flits_in.front().flit;
      r.receive(lf.in_port, lf.vc, lf.flit);
      ++io.flit_arrivals;
      io.activity = true;
      flits_in.pop_front();
    }

    // 2. Switch allocation + traversal; buffer the moves. Gate claims and
    //    the per-channel counters are owner-partitioned (node n only
    //    touches channels leaving n), so no two shards write the same
    //    location. Stages 2-4 are router-local, so fusing them into one
    //    per-node pass is equivalent to the sequential whole-network
    //    phases.
    io.moves.clear();
    r.switch_allocate(*gate_, io.moves);
    for (const SwitchMove& move : io.moves) {
      io.activity = true;
      // Credit for the slot freed on the input buffer goes to the upstream
      // router (none needed for injection: the NI polls occupancy).
      if (move.in_port != r.local_port()) {
        const NodeId upstream = topology_.neighbor(n, move.in_port);
        if (upstream == kInvalidNode) {
          throw std::logic_error("Fabric: flit arrived over a missing link");
        }
        io.credits.push_back(TimedCredit{
            now + 1, Credit{upstream, topo::KAryNCube::opposite(move.in_port),
                            move.in_vc}});
      }
      if (move.eject) {
        ++io.delivered;
        io.ejected.push_back(EjectedFlit{n, move.flit});
      } else {
        const NodeId next = topology_.neighbor(n, move.out_port);
        if (next == kInvalidNode) {
          throw std::logic_error("Fabric: routed onto a missing link");
        }
        ++io.hops;
        ++link_flits_[topology_.channel_index(n, move.out_port)];
        io.flits.push_back(TimedFlit{
            now + params_.link_latency,
            LinkFlit{next, topo::KAryNCube::opposite(move.out_port),
                     move.out_vc, move.flit}});
      }
    }

    // 3. VC allocation, then 4. route computation (so a new head needs one
    //    cycle in each stage before its first switch traversal).
    r.vc_allocate();
    r.route_compute();

    // Recompute the activity byte (the NI bit is the interface's own).
    node_busy_[n] =
        static_cast<std::uint8_t>((busy & kNodeBusyNi) |
                                  (r.quiet() ? 0 : kNodeBusyRouter) |
                                  (credits_in.empty() && flits_in.empty()
                                       ? 0
                                       : kNodeBusyInbox));
  }
}

void Fabric::commit_cycle(Cycle now, const ShardIo& io) {
  for (const TimedCredit& tc : io.credits) {
    credit_in_[tc.credit.node].push_ordered(tc);
    node_busy_[tc.credit.node] |= kNodeBusyInbox;
  }
  for (const TimedFlit& tf : io.flits) {
    flit_in_[tf.flit.dest_node].push_ordered(tf);
    node_busy_[tf.flit.dest_node] |= kNodeBusyInbox;
  }
  if (delivery_) {
    for (const EjectedFlit& e : io.ejected) delivery_(e.node, e.flit);
  }
  flits_delivered_ += io.delivered;
  flits_injected_ += io.injected;
  link_flit_hops_ += io.hops;
  flits_on_links_ += static_cast<std::int64_t>(io.hops) -
                     static_cast<std::int64_t>(io.flit_arrivals);
  flits_buffered_ += static_cast<std::int64_t>(io.injected) +
                     static_cast<std::int64_t>(io.flit_arrivals) -
                     static_cast<std::int64_t>(io.delivered) -
                     static_cast<std::int64_t>(io.hops);
  if (io.activity) last_activity_ = now;
}

void Fabric::commit_shard_local(NodeId begin, NodeId end, ShardIo& io) {
  auto own = [&](NodeId n) { return n >= begin && n < end; };
  std::size_t kept = 0;
  for (TimedCredit& tc : io.credits) {
    if (own(tc.credit.node)) {
      credit_in_[tc.credit.node].push_ordered(tc);
      node_busy_[tc.credit.node] |= kNodeBusyInbox;
    } else {
      io.credits[kept++] = tc;
    }
  }
  io.credits.resize(kept);
  kept = 0;
  for (TimedFlit& tf : io.flits) {
    if (own(tf.flit.dest_node)) {
      flit_in_[tf.flit.dest_node].push_ordered(tf);
      node_busy_[tf.flit.dest_node] |= kNodeBusyInbox;
    } else {
      io.flits[kept++] = tf;
    }
  }
  io.flits.resize(kept);
}

void Fabric::step(Cycle now) {
  begin_cycle(now);
  scratch_io_.clear();
  step_nodes(now, 0, topology_.num_nodes(), scratch_io_);
  commit_cycle(now, scratch_io_);
}

bool Fabric::any_work(NodeId begin, NodeId end) const {
  for (NodeId n = begin; n < end; ++n) {
    if (node_busy_[n] != 0) return true;
  }
  return false;
}

double Fabric::max_link_utilization(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  std::uint64_t peak = 0;
  for (auto count : link_flits_) peak = std::max(peak, count);
  return static_cast<double>(peak) / static_cast<double>(elapsed);
}

void Fabric::snap(snap::Archive& ar) {
  for (Router& r : routers_) r.snap(ar);
  const auto snap_timed_credit = [](snap::Archive& a, TimedCredit& tc) {
    a.pod(tc.due);
    a.pod(tc.credit.node);
    a.pod(tc.credit.out_port);
    a.pod(tc.credit.vc);
  };
  const auto snap_timed_flit = [](snap::Archive& a, TimedFlit& tf) {
    a.pod(tf.due);
    a.pod(tf.flit.dest_node);
    a.pod(tf.flit.in_port);
    a.pod(tf.flit.vc);
    snap_flit(a, tf.flit.flit);
  };
  for (auto& ring : credit_in_) ring.snap(ar, snap_timed_credit);
  for (auto& ring : flit_in_) ring.snap(ar, snap_timed_flit);
  ar.vec_pod(node_busy_);
  ar.pod(flits_delivered_);
  ar.pod(flits_injected_);
  ar.pod(link_flit_hops_);
  ar.vec_pod(link_flits_);
  ar.pod(flits_on_links_);
  ar.pod(flits_buffered_);
  ar.pod(last_activity_);
}

}  // namespace wavesim::wh
