#include "wormhole/fabric.hpp"

#include <stdexcept>

namespace wavesim::wh {

Fabric::Fabric(const topo::KAryNCube& topology,
               const route::RoutingAlgorithm& routing,
               const FabricParams& params, LinkGate* gate)
    : topology_(topology), params_(params), gate_(gate),
      gate_is_owned_(gate == nullptr),
      flit_line_(params.link_latency),
      credit_line_(1),
      link_flits_(topology.num_channels(), 0) {
  if (params.link_latency < 1) {
    throw std::invalid_argument("Fabric: link_latency must be >= 1");
  }
  if (gate_is_owned_) {
    owned_gate_ = std::make_unique<ExclusiveLinkGate>(topology);
    gate_ = owned_gate_.get();
  }
  routers_.reserve(topology.num_nodes());
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    routers_.push_back(
        std::make_unique<Router>(topology, routing, n, params.router));
  }
}

bool Fabric::can_inject(NodeId node, VcId vc) const {
  const Router& r = router(node);
  return r.can_accept(r.local_port(), vc);
}

void Fabric::inject(NodeId node, VcId vc, const Flit& flit) {
  Router& r = router(node);
  r.receive(r.local_port(), vc, flit);
  ++flits_injected_;
}

void Fabric::inject(NodeId node, VcId vc, const Flit& flit, ShardIo& io) {
  Router& r = router(node);
  r.receive(r.local_port(), vc, flit);
  ++io.injected;
}

void Fabric::begin_cycle(Cycle now) {
  if (gate_is_owned_) owned_gate_->reset();

  // Arrivals scheduled for this cycle leave the delay lines in push order;
  // staging keeps that order so each node sees its arrivals in the same
  // relative sequence a sequential drain would apply them.
  staged_credits_.clear();
  staged_flits_.clear();
  while (credit_line_.ready(now)) staged_credits_.push_back(credit_line_.pop());
  while (flit_line_.ready(now)) {
    staged_flits_.push_back(flit_line_.pop());
    last_activity_ = now;
  }
}

void Fabric::step_nodes(Cycle /*now*/, NodeId begin, NodeId end,
                        ShardIo& io) {
  // `now` is part of the engine seam's signature for symmetry with
  // begin_cycle/commit_cycle; the shard phase itself is time-agnostic.
  // 1. Apply this cycle's staged arrivals to the routers we own. The
  //    staging vectors are shared but read-only during the shard phase.
  for (const Credit& c : staged_credits_) {
    if (c.node >= begin && c.node < end) {
      routers_[c.node]->credit_return(c.out_port, c.vc);
    }
  }
  for (const LinkFlit& lf : staged_flits_) {
    if (lf.dest_node >= begin && lf.dest_node < end) {
      routers_[lf.dest_node]->receive(lf.in_port, lf.vc, lf.flit);
    }
  }

  // 2. Switch allocation + traversal; buffer the moves. Gate claims and
  //    the per-channel counters are owner-partitioned (node n only touches
  //    channels leaving n), so no two shards write the same location.
  for (NodeId n = begin; n < end; ++n) {
    Router& r = *routers_[n];
    for (const SwitchMove& move : r.switch_allocate(*gate_)) {
      io.activity = true;
      // Credit for the slot freed on the input buffer goes to the upstream
      // router (none needed for injection: the NI polls occupancy).
      if (move.in_port != r.local_port()) {
        const NodeId upstream = topology_.neighbor(n, move.in_port);
        if (upstream == kInvalidNode) {
          throw std::logic_error("Fabric: flit arrived over a missing link");
        }
        io.credits.push_back(
            Credit{upstream, topo::KAryNCube::opposite(move.in_port),
                   move.in_vc});
      }
      if (move.eject) {
        ++io.delivered;
        io.ejected.push_back(EjectedFlit{n, move.flit});
      } else {
        const NodeId next = topology_.neighbor(n, move.out_port);
        if (next == kInvalidNode) {
          throw std::logic_error("Fabric: routed onto a missing link");
        }
        ++io.hops;
        ++link_flits_[topology_.channel_index(n, move.out_port)];
        io.flits.push_back(
            LinkFlit{next, topo::KAryNCube::opposite(move.out_port),
                     move.out_vc, move.flit});
      }
    }
  }

  // 3. VC allocation, then 4. route computation (so a new head needs one
  //    cycle in each stage before its first switch traversal). Both are
  //    router-local, so fusing them into the shard sweep is equivalent to
  //    the sequential whole-network phases.
  for (NodeId n = begin; n < end; ++n) routers_[n]->vc_allocate();
  for (NodeId n = begin; n < end; ++n) routers_[n]->route_compute();
}

void Fabric::commit_cycle(Cycle now, const ShardIo& io) {
  for (const Credit& c : io.credits) credit_line_.push(now, c);
  for (const LinkFlit& lf : io.flits) flit_line_.push(now, lf);
  if (delivery_) {
    for (const EjectedFlit& e : io.ejected) delivery_(e.node, e.flit);
  }
  flits_delivered_ += io.delivered;
  flits_injected_ += io.injected;
  link_flit_hops_ += io.hops;
  if (io.activity) last_activity_ = now;
}

void Fabric::step(Cycle now) {
  begin_cycle(now);
  scratch_io_.clear();
  step_nodes(now, 0, topology_.num_nodes(), scratch_io_);
  commit_cycle(now, scratch_io_);
}

double Fabric::max_link_utilization(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  std::uint64_t peak = 0;
  for (auto count : link_flits_) peak = std::max(peak, count);
  return static_cast<double>(peak) / static_cast<double>(elapsed);
}

std::int64_t Fabric::flits_in_flight() const {
  std::int64_t total = static_cast<std::int64_t>(flit_line_.size());
  for (const auto& r : routers_) total += r->buffered_flits();
  return total;
}

}  // namespace wavesim::wh
