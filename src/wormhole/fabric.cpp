#include "wormhole/fabric.hpp"

#include <stdexcept>

namespace wavesim::wh {

Fabric::Fabric(const topo::KAryNCube& topology,
               const route::RoutingAlgorithm& routing,
               const FabricParams& params, LinkGate* gate)
    : topology_(topology), params_(params), gate_(gate),
      gate_is_owned_(gate == nullptr),
      flit_line_(params.link_latency),
      credit_line_(1),
      link_flits_(topology.num_channels(), 0) {
  if (params.link_latency < 1) {
    throw std::invalid_argument("Fabric: link_latency must be >= 1");
  }
  if (gate_is_owned_) {
    owned_gate_ = std::make_unique<ExclusiveLinkGate>(topology);
    gate_ = owned_gate_.get();
  }
  routers_.reserve(topology.num_nodes());
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    routers_.push_back(
        std::make_unique<Router>(topology, routing, n, params.router));
  }
}

bool Fabric::can_inject(NodeId node, VcId vc) const {
  const Router& r = router(node);
  return r.can_accept(r.local_port(), vc);
}

void Fabric::inject(NodeId node, VcId vc, const Flit& flit) {
  Router& r = router(node);
  r.receive(r.local_port(), vc, flit);
  ++flits_injected_;
}

void Fabric::step(Cycle now) {
  if (gate_is_owned_) owned_gate_->reset();

  // 1. Arrivals scheduled for this cycle enter downstream buffers; credits
  //    return to upstream output VCs.
  while (credit_line_.ready(now)) {
    const Credit c = credit_line_.pop();
    routers_[c.node]->credit_return(c.out_port, c.vc);
  }
  while (flit_line_.ready(now)) {
    const LinkFlit lf = flit_line_.pop();
    routers_[lf.dest_node]->receive(lf.in_port, lf.vc, lf.flit);
    last_activity_ = now;
  }

  // 2. Switch allocation + traversal on every router; transport the moves.
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    Router& r = *routers_[n];
    for (const SwitchMove& move : r.switch_allocate(*gate_)) {
      last_activity_ = now;
      // Credit for the slot freed on the input buffer goes to the upstream
      // router (none needed for injection: the NI polls occupancy).
      if (move.in_port != r.local_port()) {
        const NodeId upstream = topology_.neighbor(n, move.in_port);
        if (upstream == kInvalidNode) {
          throw std::logic_error("Fabric: flit arrived over a missing link");
        }
        credit_line_.push(
            now, Credit{upstream, topo::KAryNCube::opposite(move.in_port),
                        move.in_vc});
      }
      if (move.eject) {
        ++flits_delivered_;
        if (delivery_) delivery_(n, move.flit);
      } else {
        const NodeId next = topology_.neighbor(n, move.out_port);
        if (next == kInvalidNode) {
          throw std::logic_error("Fabric: routed onto a missing link");
        }
        ++link_flit_hops_;
        ++link_flits_[topology_.channel_index(n, move.out_port)];
        flit_line_.push(now,
                        LinkFlit{next, topo::KAryNCube::opposite(move.out_port),
                                 move.out_vc, move.flit});
      }
    }
  }

  // 3. VC allocation, then 4. route computation (so a new head needs one
  //    cycle in each stage before its first switch traversal).
  for (auto& r : routers_) r->vc_allocate();
  for (auto& r : routers_) r->route_compute();
}

double Fabric::max_link_utilization(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  std::uint64_t peak = 0;
  for (auto count : link_flits_) peak = std::max(peak, count);
  return static_cast<double>(peak) / static_cast<double>(elapsed);
}

std::int64_t Fabric::flits_in_flight() const {
  std::int64_t total = static_cast<std::int64_t>(flit_line_.size());
  for (const auto& r : routers_) total += r->buffered_flits();
  return total;
}

}  // namespace wavesim::wh
