#include "core/instrumentation.hpp"

namespace wavesim::core {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubmitted: return "submitted";
    case EventKind::kProbeLaunched: return "probe-launched";
    case EventKind::kCircuitEstablished: return "circuit-established";
    case EventKind::kSetupAbandoned: return "setup-abandoned";
    case EventKind::kTransferStarted: return "transfer-started";
    case EventKind::kTransferCompleted: return "transfer-completed";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kTeardownStarted: return "teardown-started";
    case EventKind::kEvicted: return "evicted";
    case EventKind::kReleaseDemanded: return "release-demanded";
    case EventKind::kBacktracked: return "backtracked";
    case EventKind::kMisrouted: return "misrouted";
    case EventKind::kForceTeardown: return "force-teardown";
    case EventKind::kFallbackWormhole: return "fallback-wormhole";
    case EventKind::kLinkDown: return "link-down";
    case EventKind::kLinkUp: return "link-up";
    case EventKind::kCircuitInvalidated: return "circuit-invalidated";
    case EventKind::kRouteWithdrawn: return "route-withdrawn";
  }
  return "?";
}

}  // namespace wavesim::core
