// PCS control plane: drives probes (MB-m search with Force semantics),
// setup acks, teardowns and release requests over the control channels.
//
// Control channels are single-flit virtual channels of the S0 physical
// links, so every control-flit hop claims one flit-time of link bandwidth
// through the shared LinkGate (the control plane steps before the wormhole
// plane each cycle, giving control traffic priority as in the paper's
// router, where the PCS routing control unit owns dedicated VCs).
//
// Race rules implemented exactly as argued in the proof of Theorem 1:
//  * a release request finding its circuit's mapping gone (concurrent
//    teardown) is discarded at that hop;
//  * the second of two release requests for the same circuit is discarded
//    at the source;
//  * a Force probe waits only on channels whose circuit has returned its
//    ack; if every requested channel belongs to a circuit still being
//    established the probe backtracks even with Force set.
#pragma once

#include <cstdint>
#include <vector>

#include "core/circuit.hpp"
#include "core/instrumentation.hpp"
#include "pcs/history.hpp"
#include "pcs/mbm.hpp"
#include "pcs/probe.hpp"
#include "pcs/registers.hpp"
#include "sim/types.hpp"
#include "topology/topology.hpp"
#include "wormhole/link_gate.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

struct ControlPlaneParams {
  std::int32_t num_switches = 2;   ///< k
  std::int32_t max_misroutes = 2;  ///< m of MB-m
  std::int32_t hop_cycles = 2;     ///< per-hop latency of control flits
  /// A waiting Force probe re-sends its release request after this many
  /// cycles. A request can legitimately be discarded (e.g. it reaches the
  /// source while the victim's own setup ack is still in flight, or races
  /// a teardown); the retry guarantees the wait stays finite, preserving
  /// the Theorem-1 argument.
  std::int32_t release_retry_cycles = 128;
  /// Seeded bug plumbed through pcs::decide (see ProtocolConfig).
  bool mutate_force_unacked = false;
};

/// Probe finished: the circuit is established (success) or the search of
/// its switch is exhausted (failure; the circuit record stays kProbing so
/// the protocol layer can retry on another switch or fall back).
struct ProbeResult {
  ProbeId probe = kInvalidProbe;
  CircuitId circuit = kInvalidCircuit;
  NodeId src = kInvalidNode;
  bool success = false;
  std::int32_t switch_index = 0;
};

/// A release request reached the source of `circuit`.
struct ReleaseDemand {
  CircuitId circuit = kInvalidCircuit;
  NodeId src = kInvalidNode;
};

/// Teardown flit reached the circuit's end; all channels are free.
struct TeardownDone {
  CircuitId circuit = kInvalidCircuit;
};

/// An established circuit was killed by a dynamic link failure; its source
/// interface must invalidate the cache entry and recover the traffic
/// (fail_link handles probing/tearing-down circuits internally).
struct KilledCircuit {
  CircuitId circuit = kInvalidCircuit;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
};

class ControlPlane {
 public:
  /// `instrumentation` may be nullptr (no event emission). When supplied
  /// it must outlive the plane; probe backtracks and misroutes are
  /// reported through it.
  ControlPlane(const topo::KAryNCube& topology, CircuitTable& circuits,
               wh::LinkGate& gate, const ControlPlaneParams& params,
               const Instrumentation* instrumentation = nullptr);

  std::int32_t num_switches() const noexcept { return params_.num_switches; }

  /// Static fault injection (before any traffic).
  void mark_faulty(NodeId node, std::int32_t switch_index, PortId port);

  /// Dynamic link failure: the bidirectional link leaving `node` through
  /// `port` dies on every wave switch. Kills every probe whose reserved
  /// path crosses it (failed ProbeResults drive the normal retry
  /// machinery), releases and retires every circuit crossing it, drops
  /// their in-flight control flits, and marks the channels faulty.
  /// Returns the killed *established* circuits for the Network to
  /// dispatch to their source interfaces.
  std::vector<KilledCircuit> fail_link(NodeId node, PortId port);
  /// The link recovered: its channels are selectable again (channels also
  /// carrying a static fault stay faulty).
  void restore_link(NodeId node, PortId port);

  /// Launch an MB-m probe for `circuit` (state must be kProbing) over the
  /// circuit's switch. Returns the probe id.
  ProbeId launch_probe(CircuitId circuit, bool force);

  /// Source-initiated teardown of an established, idle circuit.
  void start_teardown(CircuitId circuit);

  /// Advance one cycle: move every active probe and travelling control
  /// flit by at most one hop.
  void step(Cycle now);

  // -- event drains (call once per cycle) ---------------------------------
  std::vector<ProbeResult> take_probe_results();
  std::vector<ReleaseDemand> take_release_demands();
  std::vector<TeardownDone> take_teardowns_done();

  // -- introspection -------------------------------------------------------
  const pcs::SwitchRegisters& registers(NodeId node, std::int32_t sw) const {
    return registers_.at(node, sw);
  }
  std::size_t active_probes() const noexcept { return probes_.size(); }
  bool probe_active(ProbeId probe) const;

  /// One parked Force probe, for fsck invariant I7: `was_acked` records
  /// whether the wait target's circuit had returned its ack at the moment
  /// the probe decided to wait (re-evaluated on every re-decide). The
  /// decision-time snapshot is what Theorem 1 constrains; the channel may
  /// legitimately change state afterwards, between the wait and the
  /// probe's next re-decide.
  struct WaitingProbe {
    ProbeId probe = kInvalidProbe;
    NodeId node = kInvalidNode;
    std::int32_t switch_index = 0;
    PortId port = kInvalidPort;
    bool was_acked = false;
  };
  std::vector<WaitingProbe> waiting_probes() const;
  std::size_t travelling_flits() const noexcept { return flits_.size(); }
  bool idle() const noexcept { return probes_.empty() && flits_.empty(); }

  struct Stats {
    std::uint64_t probes_launched = 0;
    std::uint64_t probes_succeeded = 0;
    std::uint64_t probes_failed = 0;
    std::uint64_t probe_advances = 0;
    std::uint64_t probe_backtracks = 0;
    std::uint64_t probe_misroutes = 0;
    std::uint64_t force_waits = 0;           ///< cycles spent waiting
    std::uint64_t release_requests_sent = 0;
    std::uint64_t release_requests_discarded = 0;
    std::uint64_t teardowns_started = 0;
    std::uint64_t teardowns_completed = 0;
    std::uint64_t acks_completed = 0;
    std::uint64_t probes_killed = 0;     ///< killed by a link failure
    std::uint64_t circuits_killed = 0;   ///< crossing a link that failed
    /// Largest number of decision steps any single probe has taken;
    /// bounded by the finite search space (livelock-freedom, Theorem 3).
    std::uint64_t max_probe_steps = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Human-readable state of every active probe and travelling flit
  /// (diagnostics; used by the watchdog reports and debugging).
  std::string debug_dump() const;

  /// Serialize registers, history, probes (including parked Force waits
  /// and pending release retries), travelling flits, undrained events,
  /// static-fault shadow, and stats (snapshot/restore). The cached
  /// CircuitRecord pointers are re-resolved against the circuit table on
  /// load, never serialized.
  void snap(snap::Archive& ar);

 private:
  struct Hop {
    NodeId from = kInvalidNode;
    PortId out_port = kInvalidPort;
    std::int32_t misroutes_before = 0;
  };

  struct ActiveProbe {
    pcs::Probe probe;
    /// The probe's circuit record. Safe to cache: CircuitTable entries
    /// are node-stable and the record outlives the probe (a probing
    /// circuit is never retired).
    CircuitRecord* rec = nullptr;
    NodeId node = kInvalidNode;       ///< current location
    PortId arrival_port = kInvalidPort;  ///< input port here (src: invalid)
    std::vector<Hop> stack;           ///< reserved path back to the source
    bool waiting = false;             ///< Force probe parked on wait_port
    PortId wait_port = kInvalidPort;
    bool wait_was_acked = false;      ///< wait target acked at decision time
    CircuitId release_requested_for = kInvalidCircuit;
    Cycle release_requested_at = 0;
    Cycle ready_at = 0;               ///< earliest cycle of the next hop
    std::uint64_t steps = 0;
  };

  /// A non-probe control flit walking an existing circuit's control path.
  struct TravelFlit {
    pcs::ControlKind kind = pcs::ControlKind::kAck;
    CircuitId circuit = kInvalidCircuit;
    std::int32_t switch_index = 0;
    NodeId node = kInvalidNode;  ///< current location
    /// kAck / kReleaseRequest: input port of the circuit at `node`
    /// (direction toward the source). kTeardown: the circuit's output
    /// port at `node` (direction toward the destination).
    PortId port = kInvalidPort;
    Cycle ready_at = 0;  ///< earliest cycle of the next hop
    bool done = false;
  };

  const std::vector<pcs::PortView>& build_view(const ActiveProbe& ap);
  void step_probe(ActiveProbe& ap, Cycle now);
  void finish_probe_success(ActiveProbe& ap, Cycle now);
  void fail_probe(ActiveProbe& ap);
  void request_release(ActiveProbe& ap, PortId port, Cycle now);
  void step_flit(TravelFlit& flit, Cycle now);
  void erase_probe(ProbeId id);
  /// Release every channel `circuit` holds along its path (any mix of
  /// reserved / busy / already-freed hops).
  void release_path(const CircuitRecord& rec);
  bool path_crosses(const CircuitRecord& rec, NodeId node, PortId port,
                    NodeId peer, PortId back) const;
  void drop_flits_of(CircuitId circuit);

  const topo::KAryNCube& topology_;
  CircuitTable& circuits_;
  wh::LinkGate& gate_;
  ControlPlaneParams params_;  // [snap: skip] config, fixed at construction
  const Instrumentation* instr_ = nullptr;  // [snap: skip] observer wiring
  pcs::RegisterFile registers_;
  pcs::HistoryStore history_;
  /// Active probes in ascending id order (= creation order: ids are
  /// handed out monotonically). Probes are few and only ever erase
  /// themselves while being stepped, so a flat sorted vector beats a
  /// node-based map on every per-cycle access pattern.
  std::vector<ActiveProbe> probes_;
  std::vector<TravelFlit> flits_;
  std::vector<ProbeResult> probe_results_;
  std::vector<ReleaseDemand> release_demands_;
  std::vector<TeardownDone> teardowns_done_;
  /// Hot-path scratch, reused across probes/cycles (never read across
  /// calls): the MB-m port view.
  std::vector<pcs::PortView> view_scratch_;  // [snap: skip] dead between calls
  /// Channels statically faulted at init, per (node, switch, port):
  /// restore_link must not heal them. Empty until the first mark_faulty.
  std::vector<std::uint8_t> static_faulty_;
  ProbeId next_probe_ = 0;
  Stats stats_;
};

}  // namespace wavesim::core
