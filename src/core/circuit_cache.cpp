#include "core/circuit_cache.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::core {

CircuitCache::CircuitCache(std::int32_t entries, sim::ReplacementPolicy policy,
                           sim::Rng rng)
    : entries_(entries), policy_(policy), rng_(rng) {
  if (entries < 1) throw std::invalid_argument("CircuitCache: entries < 1");
}

CacheEntry* CircuitCache::find(NodeId dest) {
  for (auto& e : entries_) {
    if (e.valid && e.dest == dest) return &e;
  }
  return nullptr;
}

const CacheEntry* CircuitCache::find(NodeId dest) const {
  for (const auto& e : entries_) {
    if (e.valid && e.dest == dest) return &e;
  }
  return nullptr;
}

std::int32_t CircuitCache::pick_victim() {
  // Replaceable = valid, established, idle. Probing entries are mid-setup
  // and in-use entries carry a message; neither may be displaced (the
  // paper's In-use bit exists for exactly this).
  std::vector<std::int32_t> candidates;
  for (std::int32_t i = 0; i < capacity(); ++i) {
    const CacheEntry& e = entries_[i];
    if (e.valid && e.ack_returned && !e.in_use && !e.probing) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return -1;
  auto better = [&](std::int32_t a, std::int32_t b) {
    const CacheEntry& ea = entries_[a];
    const CacheEntry& eb = entries_[b];
    switch (policy_) {
      case sim::ReplacementPolicy::kLru: return ea.last_use < eb.last_use;
      case sim::ReplacementPolicy::kLfu: return ea.uses < eb.uses;
      case sim::ReplacementPolicy::kFifo: return ea.created < eb.created;
      case sim::ReplacementPolicy::kRandom: return false;  // handled below
    }
    return false;
  };
  if (policy_ == sim::ReplacementPolicy::kRandom) {
    return candidates[rng_.next_below(candidates.size())];
  }
  std::int32_t best = candidates.front();
  for (std::int32_t c : candidates) {
    if (better(c, best)) best = c;
  }
  return best;
}

CacheEntry* CircuitCache::allocate(NodeId dest, Cycle now,
                                   std::optional<CacheEntry>* evicted) {
  if (evicted != nullptr) evicted->reset();
  if (find(dest) != nullptr) {
    throw std::logic_error("CircuitCache: duplicate entry for destination");
  }
  CacheEntry* slot = nullptr;
  for (auto& e : entries_) {
    if (!e.valid) {
      slot = &e;
      break;
    }
  }
  if (slot == nullptr) {
    const std::int32_t victim = pick_victim();
    if (victim < 0) return nullptr;
    if (evicted != nullptr) *evicted = entries_[victim];
    ++evictions;
    slot = &entries_[victim];
  }
  *slot = CacheEntry{};
  slot->valid = true;
  slot->dest = dest;
  slot->created = now;
  slot->last_use = now;
  return slot;
}

void CircuitCache::touch(CacheEntry& entry, Cycle now) {
  entry.last_use = now;
  ++entry.uses;
}

void CircuitCache::invalidate(CacheEntry& entry) {
  if (entry.in_use) {
    throw std::logic_error("CircuitCache: invalidating an in-use entry");
  }
  entry = CacheEntry{};
}

std::int32_t CircuitCache::valid_entries() const {
  std::int32_t n = 0;
  for (const auto& e : entries_) n += e.valid ? 1 : 0;
  return n;
}

void CircuitCache::snap(snap::Archive& ar) {
  for (CacheEntry& e : entries_) {
    ar.pod(e.valid);
    ar.pod(e.dest);
    ar.pod(e.initial_switch);
    ar.pod(e.switch_index);
    ar.pod(e.channel);
    ar.pod(e.circuit);
    ar.pod(e.ack_returned);
    ar.pod(e.in_use);
    ar.pod(e.probing);
    ar.pod(e.last_use);
    ar.pod(e.uses);
    ar.pod(e.created);
  }
  ar.pod(hits);
  ar.pod(misses);
  ar.pod(evictions);
  rng_.snap(ar);
}

}  // namespace wavesim::core
