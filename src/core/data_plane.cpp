#include "core/data_plane.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "snap/archive.hpp"

namespace wavesim::core {

DataPlane::DataPlane(CircuitTable& circuits, const DataPlaneParams& params)
    : circuits_(circuits), params_(params) {
  if (params.flits_per_cycle <= 0.0 || params.wave_clock_factor <= 0.0 ||
      params.window < 1) {
    throw std::invalid_argument("DataPlane: bad params");
  }
}

Cycle DataPlane::pipe_latency(std::int32_t hops) const {
  // Each hop costs one wave cycle (switch + wire, no flit buffering);
  // plus one base cycle of synchronizer delay at the delivery end.
  const double cycles =
      static_cast<double>(hops) / params_.wave_clock_factor;
  return static_cast<Cycle>(std::ceil(cycles)) + 1;
}

void DataPlane::start_transfer(MessageId msg, CircuitId circuit,
                               std::int32_t length, Cycle now,
                               Cycle start_delay) {
  CircuitRecord& rec = circuits_.at(circuit);
  if (rec.state != CircuitState::kEstablished) {
    throw std::logic_error("start_transfer: circuit not established");
  }
  if (rec.in_use) {
    throw std::logic_error("start_transfer: circuit already carrying a message");
  }
  if (length < 1) throw std::invalid_argument("start_transfer: empty message");
  rec.in_use = true;
  ++rec.messages_carried;
  Transfer t;
  t.msg = msg;
  t.circuit = circuit;
  t.length = length;
  t.started = now;
  t.not_before = now + start_delay;
  t.pipe = pipe_latency(rec.hops());
  transfers_.emplace(msg, std::move(t));
}

void DataPlane::step(Cycle now) {
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    Transfer& t = it->second;
    if (now < t.not_before) {
      ++it;  // still in the software send path / buffer re-allocation
      continue;
    }
    // 1. Acks arriving at the source this cycle: a flit delivered at cycle
    //    c is acknowledged at c + pipe.
    while (t.acked < t.sent && t.deliveries_head < t.deliveries.size() &&
           t.deliveries[t.deliveries_head] + t.pipe <= now) {
      ++t.deliveries_head;
      ++t.acked;
    }
    if (t.deliveries_head == t.deliveries.size()) {
      t.deliveries.clear();
      t.deliveries_head = 0;
    }
    // 2. Inject new flits: bandwidth accumulator, window limit.
    t.send_credit += params_.flits_per_cycle;
    while (t.sent < t.length && t.send_credit >= 1.0 &&
           t.sent - t.acked < params_.window) {
      t.send_credit -= 1.0;
      ++t.sent;
      t.deliveries.push_back(now + t.pipe);
      t.last_delivery = now + t.pipe;
      ++flits_delivered_;
    }
    if (t.send_credit > params_.flits_per_cycle) {
      t.send_credit = params_.flits_per_cycle;  // don't bank idle cycles
    }
    // 3. Completion: every flit sent and acknowledged.
    if (t.sent == t.length && t.acked == t.length) {
      CircuitRecord& rec = circuits_.at(t.circuit);
      rec.in_use = false;
      completed_.push_back(TransferDone{t.msg, t.circuit, rec.src, rec.dest,
                                        t.last_delivery, now});
      it = transfers_.erase(it);
    } else {
      ++it;
    }
  }
}

MessageId DataPlane::abort_transfer(CircuitId circuit) {
  for (auto it = transfers_.begin(); it != transfers_.end(); ++it) {
    if (it->second.circuit != circuit) continue;
    const MessageId msg = it->first;
    circuits_.at(circuit).in_use = false;
    transfers_.erase(it);
    ++transfers_aborted_;
    return msg;  // a circuit carries at most one message (In-use bit)
  }
  return kInvalidMessage;
}

std::vector<TransferDone> DataPlane::take_completed() {
  return std::exchange(completed_, {});
}

void DataPlane::snap(snap::Archive& ar) {
  const auto snap_transfer = [](snap::Archive& a, Transfer& t) {
    a.pod(t.msg);
    a.pod(t.circuit);
    a.pod(t.length);
    a.pod(t.sent);
    a.pod(t.acked);
    a.pod(t.send_credit);
    a.pod(t.started);
    a.pod(t.not_before);
    a.pod(t.pipe);
    a.pod(t.last_delivery);
    a.vec_pod(t.deliveries);
    std::uint64_t head = t.deliveries_head;
    a.pod(head);
    t.deliveries_head = static_cast<std::size_t>(head);
  };
  // std::map iterates in key order already, so writing in iteration
  // order is deterministic.
  if (ar.writing()) {
    std::uint64_t n = transfers_.size();
    ar.pod(n);
    for (auto& [msg, transfer] : transfers_) {
      MessageId key = msg;
      ar.pod(key);
      snap_transfer(ar, transfer);
    }
  } else {
    transfers_.clear();
    std::uint64_t n = 0;
    ar.pod(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      MessageId key = kInvalidMessage;
      ar.pod(key);
      snap_transfer(ar, transfers_[key]);
    }
  }
  ar.vec(completed_, [](snap::Archive& a, TransferDone& d) {
    a.pod(d.msg);
    a.pod(d.circuit);
    a.pod(d.src);
    a.pod(d.dest);
    a.pod(d.delivered_at);
    a.pod(d.acked_at);
  });
  ar.pod(flits_delivered_);
  ar.pod(transfers_aborted_);
}

}  // namespace wavesim::core
