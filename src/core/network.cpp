#include "core/network.hpp"

#include <limits>
#include <stdexcept>

#include "sim/log.hpp"
#include "snap/archive.hpp"

namespace wavesim::core {

Network::Network(const sim::SimConfig& config)
    : config_(config),
      topology_(config.topology.radix, config.topology.torus),
      routing_(route::make_routing(config.router.routing, topology_,
                                   config.router.wormhole_vcs)),
      gate_(topology_),
      fabric_(topology_, *routing_,
              wh::FabricParams{
                  wh::RouterParams{config.router.wormhole_vcs,
                                   config.router.vc_buffer_depth},
                  static_cast<Cycle>(config.router.wormhole_pipeline_latency)},
              &gate_),
      rng_(config.seed) {
  config_.validate();
  if (config_.router.wave_switches > 0) {
    ControlPlaneParams cp_params{config_.router.wave_switches,
                                 config_.protocol.max_misroutes,
                                 config_.router.control_hop_cycles};
    cp_params.mutate_force_unacked = config_.protocol.mutate_force_unacked;
    control_ = std::make_unique<ControlPlane>(topology_, circuits_, gate_,
                                              cp_params, &instrumentation_);
    data_ = std::make_unique<DataPlane>(
        circuits_,
        DataPlaneParams{config_.circuit_flits_per_cycle(),
                        config_.effective_wave_factor(),
                        config_.router.circuit_window});
    inject_faults();
    if (config_.faults.dynamic()) {
      // Fork keeps the schedule expansion off the interfaces' rng streams
      // only for fault-bearing runs; fault-free runs draw exactly the
      // sequence they always did.
      fault_ = std::make_unique<fault::FaultPlane>(config_, topology_,
                                                   rng_.fork());
    }
  }
  interfaces_.reserve(topology_.num_nodes());
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    interfaces_.push_back(std::make_unique<NodeInterface>(
        n, config_, topology_, log_, circuits_, fabric_, control_.get(),
        data_.get(), fault_.get(), instrumentation_, rng_.fork()));
  }
  sim::log_info("network up: ", topology_.num_nodes(), " nodes, ",
                sim::to_string(config_.protocol.protocol), ", routing ",
                sim::to_string(config_.router.routing), ", w=",
                config_.router.wormhole_vcs, " k=",
                config_.router.wave_switches,
                faulty_channels_ > 0 ? " (faulty circuit channels: " : "",
                faulty_channels_ > 0 ? std::to_string(faulty_channels_) : "",
                faulty_channels_ > 0 ? ")" : "");
  // Reassembly happens in step_shard (each message's destination node owns
  // its record), so no fabric delivery handler is installed.
}

void Network::inject_faults() {
  if (config_.faults.link_fault_rate <= 0.0) return;
  sim::Rng fault_rng = rng_.fork();
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    for (std::int32_t s = 0; s < config_.router.wave_switches; ++s) {
      for (PortId p = 0; p < topology_.num_ports(); ++p) {
        if (!topology_.has_neighbor(n, p)) continue;
        if (fault_rng.chance(config_.faults.link_fault_rate)) {
          control_->mark_faulty(n, s, p);
          ++faulty_channels_;
        }
      }
    }
  }
}

MessageId Network::send(NodeId src, NodeId dest, std::int32_t length) {
  if (src < 0 || src >= topology_.num_nodes() || dest < 0 ||
      dest >= topology_.num_nodes()) {
    throw std::invalid_argument("Network::send: node out of range");
  }
  if (src == dest) {
    throw std::invalid_argument("Network::send: src == dest");
  }
  if (length < 1) {
    throw std::invalid_argument("Network::send: length < 1");
  }
  return dispatch_send(src, dest, length, now_);
}

MessageId Network::dispatch_send(NodeId src, NodeId dest, std::int32_t length,
                                 Cycle at) {
  const MessageId id = log_.create(src, dest, length, at);
  instrumentation_.emit(at, EventKind::kSubmitted, src, id);
  interfaces_[src]->submit(id, at);
  return id;
}

void Network::schedule_send(NodeId src, NodeId dest, std::int32_t length,
                            Cycle at) {
  if (src < 0 || src >= topology_.num_nodes() || dest < 0 ||
      dest >= topology_.num_nodes()) {
    throw std::invalid_argument("Network::schedule_send: node out of range");
  }
  if (src == dest) {
    throw std::invalid_argument("Network::schedule_send: src == dest");
  }
  if (length < 1) {
    throw std::invalid_argument("Network::schedule_send: length < 1");
  }
  if (at < now_) {
    throw std::invalid_argument("Network::schedule_send: cycle in the past");
  }
  if (sends_head_ < sends_.size() && at < sends_.back().at) {
    throw std::invalid_argument(
        "Network::schedule_send: cycles must be non-decreasing");
  }
  sends_.push_back(ScheduledSend{at, src, dest, length});
}

Cycle Network::next_scheduled_send() const noexcept {
  return sends_head_ < sends_.size() ? sends_[sends_head_].at
                                     : std::numeric_limits<Cycle>::max();
}

void Network::process_scheduled_sends(Cycle horizon) {
  while (sends_head_ < sends_.size() && sends_[sends_head_].at < horizon) {
    const ScheduledSend& s = sends_[sends_head_++];
    dispatch_send(s.src, s.dest, s.length, s.at);
  }
  if (sends_head_ == sends_.size()) {
    sends_.clear();
    sends_head_ = 0;
  }
}

bool Network::establish_circuit(NodeId src, NodeId dest,
                                std::int32_t max_message_flits) {
  return interfaces_.at(src)->establish_circuit(dest, now_, max_message_flits);
}

void Network::release_circuit(NodeId src, NodeId dest) {
  interfaces_.at(src)->release_circuit(dest, now_);
}

void Network::dispatch_events() {
  if (control_ != nullptr) {
    for (const auto& result : control_->take_probe_results()) {
      interfaces_[result.src]->on_probe_result(result, now_);
    }
    for (const auto& demand : control_->take_release_demands()) {
      interfaces_[demand.src]->on_release_demand(demand, now_);
    }
    control_->take_teardowns_done();  // informational only
  }
  if (data_ != nullptr) {
    for (const auto& done : data_->take_completed()) {
      interfaces_[done.src]->on_transfer_done(done, now_);
      ++delivered_msgs_;  // each TransferDone marks exactly one message
    }
  }
}

void Network::step_faults() {
  if (fault_ == nullptr) return;
  for (const fault::LinkChange& change : fault_->begin_cycle(now_)) {
    if (change.down) {
      instrumentation_.emit(now_, EventKind::kLinkDown, change.node,
                            kInvalidMessage, kInvalidCircuit, change.port);
      for (const KilledCircuit& k :
           control_->fail_link(change.node, change.port)) {
        const MessageId aborted = data_->abort_transfer(k.circuit);
        interfaces_[k.src]->on_circuit_killed(k.circuit, k.dest, aborted,
                                              now_);
      }
    } else {
      control_->restore_link(change.node, change.port);
      instrumentation_.emit(now_, EventKind::kLinkUp, change.node,
                            kInvalidMessage, kInvalidCircuit, change.port);
    }
  }
  if (instrumentation_.enabled()) {
    for (const auto& [node, dest] : fault_->withdrawals()) {
      (void)dest;
      instrumentation_.emit(now_, EventKind::kRouteWithdrawn, node);
    }
  }
}

void Network::step_begin() {
  // Fault events apply at the cycle boundary, before anything else can
  // observe the link (both steppers run this sequentially: bit-identical).
  step_faults();
  // Due scheduled sends next: exactly where a direct send() call before
  // the step would have run.
  process_scheduled_sends(now_ + 1);
  gate_.reset();
  if (control_ != nullptr) control_->step(now_);
  if (data_ != nullptr) data_->step(now_);
  dispatch_events();
  if (config_.protocol.pcs_only) {
    for (auto& ni : interfaces_) ni->pump_retries(now_);
  }
  fabric_.begin_cycle(now_);
}

void Network::step_shard(NodeId begin, NodeId end, ShardContext& ctx) {
  step_window_shard(begin, end, ctx, now_);
}

void Network::step_window_shard(NodeId begin, NodeId end, ShardContext& ctx,
                                Cycle at) {
  ctx.clear();
  for (NodeId n = begin; n < end; ++n) {
    // pump_streams on an interface with nothing pending is a no-op; the
    // fabric's activity byte makes the skip a single byte test.
    if (fabric_.ni_work(n)) interfaces_[n]->pump_streams(at, ctx.io);
  }
  fabric_.step_nodes(at, begin, end, ctx.io);
  // Reassembly by count: packets of a segmented message may interleave
  // across VCs, so tail flags alone cannot signal completion. A message
  // only ever ejects at its destination node, so its record is owned by
  // exactly one shard.
  const bool instrumented = instrumentation_.enabled();
  for (const wh::EjectedFlit& e : ctx.io.ejected) {
    MessageRecord& rec = log_.at(e.flit.msg);
    if (++rec.flits_received == rec.length) {
      log_.mark_delivered(e.flit.msg, at);
      ++ctx.messages_delivered;
      if (instrumented) {
        ctx.events.emit(at, EventKind::kDelivered, rec.dest, e.flit.msg);
      }
    }
  }
}

void Network::window_advance_local(NodeId begin, NodeId end,
                                   ShardContext& prev) {
  gate_.reset_nodes(begin, end);
  fabric_.commit_shard_local(begin, end, prev.io);
}

void Network::step_commit(std::span<ShardContext* const> contexts) {
  for (ShardContext* ctx : contexts) fabric_.commit_cycle(now_, ctx->io);
  for (ShardContext* ctx : contexts) instrumentation_.flush(ctx->events);
  for (ShardContext* ctx : contexts) delivered_msgs_ += ctx->messages_delivered;
  ++now_;
}

void Network::step_commit_window(std::span<ShardContext* const> contexts,
                                 Cycle rows) {
  const std::size_t per_row = contexts.size() / static_cast<std::size_t>(rows);
  std::size_t i = 0;
  for (Cycle j = 0; j < rows; ++j) {
    for (std::size_t s = 0; s < per_row; ++s, ++i) {
      fabric_.commit_cycle(now_ + j, contexts[i]->io);
    }
  }
  // Rows ascend and shards ascend within a row, so the staged events
  // replay in exactly the order the sequential stepper would have
  // emitted them.
  for (ShardContext* ctx : contexts) instrumentation_.flush(ctx->events);
  for (ShardContext* ctx : contexts) delivered_msgs_ += ctx->messages_delivered;
  now_ += rows;
}

bool Network::window_ready() const {
  if (config_.protocol.pcs_only) return false;  // per-cycle retry pumping
  if (control_ != nullptr && !control_->idle()) return false;
  if (data_ != nullptr && data_->active_transfers() != 0) return false;
  // Fault activity (adverts in flight, armed route timeouts) is sequential
  // per-cycle work; windows may only span dormant stretches.
  if (fault_ != nullptr && !fault_->dormant()) return false;
  return true;
}

void Network::step() {
  step_begin();
  step_shard(0, topology_.num_nodes(), scratch_ctx_);
  ShardContext* const contexts[] = {&scratch_ctx_};
  step_commit(contexts);
}

void Network::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

std::uint64_t Network::messages_delivered() const {
  return delivered_msgs_;
}

bool Network::traffic_quiescent() const {
  if (sends_head_ < sends_.size()) return false;
  if (messages_delivered() != log_.size()) return false;
  if (fabric_.flits_in_flight() != 0) return false;
  if (control_ != nullptr && !control_->idle()) return false;
  if (data_ != nullptr && data_->active_transfers() != 0) return false;
  return true;
}

bool Network::quiescent() const {
  if (!traffic_quiescent()) return false;
  // Keep stepping through pending fault events and DV convergence so a
  // drain loop witnesses recoveries scheduled after the last delivery.
  if (fault_ != nullptr && (!fault_->exhausted() || !fault_->dormant())) {
    return false;
  }
  return true;
}

void Network::snap(snap::Archive& ar) {
  // Ordering matters on restore: circuits_ must load before the control
  // plane (which re-resolves cached CircuitRecord pointers) and before
  // the interfaces (whose cache entries reference circuit ids).
  ar.pod(now_);
  circuits_.snap(ar);
  if (control_ != nullptr) control_->snap(ar);
  if (data_ != nullptr) data_->snap(ar);
  if (fault_ != nullptr) fault_->snap(ar);
  fabric_.snap(ar);
  log_.snap(ar);
  for (auto& iface : interfaces_) iface->snap(ar);
  rng_.snap(ar);
  // Only the not-yet-offered suffix of the scheduled-send queue is state;
  // restore re-bases the head at zero.
  if (ar.writing()) {
    std::uint64_t n = sends_.size() - sends_head_;
    ar.pod(n);
    for (std::size_t i = sends_head_; i < sends_.size(); ++i) {
      ar.pod(sends_[i].at);
      ar.pod(sends_[i].src);
      ar.pod(sends_[i].dest);
      ar.pod(sends_[i].length);
    }
  } else {
    std::uint64_t n = 0;
    ar.pod(n);
    sends_.assign(static_cast<std::size_t>(n), ScheduledSend{});
    sends_head_ = 0;
    for (auto& send : sends_) {
      ar.pod(send.at);
      ar.pod(send.src);
      ar.pod(send.dest);
      ar.pod(send.length);
    }
  }
  ar.pod(faulty_channels_);
  ar.pod(delivered_msgs_);
}

}  // namespace wavesim::core
