#include "core/network.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace wavesim::core {

Network::Network(const sim::SimConfig& config)
    : config_(config),
      topology_(config.topology.radix, config.topology.torus),
      routing_(route::make_routing(config.router.routing, topology_,
                                   config.router.wormhole_vcs)),
      gate_(topology_),
      fabric_(topology_, *routing_,
              wh::FabricParams{
                  wh::RouterParams{config.router.wormhole_vcs,
                                   config.router.vc_buffer_depth},
                  static_cast<Cycle>(config.router.wormhole_pipeline_latency)},
              &gate_),
      rng_(config.seed) {
  config_.validate();
  if (config_.router.wave_switches > 0) {
    control_ = std::make_unique<ControlPlane>(
        topology_, circuits_, gate_,
        ControlPlaneParams{config_.router.wave_switches,
                           config_.protocol.max_misroutes,
                           config_.router.control_hop_cycles},
        &instrumentation_);
    data_ = std::make_unique<DataPlane>(
        circuits_,
        DataPlaneParams{config_.circuit_flits_per_cycle(),
                        config_.effective_wave_factor(),
                        config_.router.circuit_window});
    inject_faults();
  }
  interfaces_.reserve(topology_.num_nodes());
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    interfaces_.push_back(std::make_unique<NodeInterface>(
        n, config_, topology_, log_, circuits_, fabric_, control_.get(),
        data_.get(), instrumentation_, rng_.fork()));
  }
  sim::log_info("network up: ", topology_.num_nodes(), " nodes, ",
                sim::to_string(config_.protocol.protocol), ", routing ",
                sim::to_string(config_.router.routing), ", w=",
                config_.router.wormhole_vcs, " k=",
                config_.router.wave_switches,
                faulty_channels_ > 0 ? " (faulty circuit channels: " : "",
                faulty_channels_ > 0 ? std::to_string(faulty_channels_) : "",
                faulty_channels_ > 0 ? ")" : "");
  // Reassembly happens in step_shard (each message's destination node owns
  // its record), so no fabric delivery handler is installed.
}

void Network::inject_faults() {
  if (config_.faults.link_fault_rate <= 0.0) return;
  sim::Rng fault_rng = rng_.fork();
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    for (std::int32_t s = 0; s < config_.router.wave_switches; ++s) {
      for (PortId p = 0; p < topology_.num_ports(); ++p) {
        if (!topology_.has_neighbor(n, p)) continue;
        if (fault_rng.chance(config_.faults.link_fault_rate)) {
          control_->mark_faulty(n, s, p);
          ++faulty_channels_;
        }
      }
    }
  }
}

MessageId Network::send(NodeId src, NodeId dest, std::int32_t length) {
  if (src < 0 || src >= topology_.num_nodes() || dest < 0 ||
      dest >= topology_.num_nodes()) {
    throw std::invalid_argument("Network::send: node out of range");
  }
  if (src == dest) {
    throw std::invalid_argument("Network::send: src == dest");
  }
  if (length < 1) {
    throw std::invalid_argument("Network::send: length < 1");
  }
  const MessageId id = log_.create(src, dest, length, now_);
  instrumentation_.emit(now_, EventKind::kSubmitted, src, id);
  interfaces_[src]->submit(id, now_);
  return id;
}

bool Network::establish_circuit(NodeId src, NodeId dest,
                                std::int32_t max_message_flits) {
  return interfaces_.at(src)->establish_circuit(dest, now_, max_message_flits);
}

void Network::release_circuit(NodeId src, NodeId dest) {
  interfaces_.at(src)->release_circuit(dest, now_);
}

void Network::dispatch_events() {
  if (control_ != nullptr) {
    for (const auto& result : control_->take_probe_results()) {
      interfaces_[result.src]->on_probe_result(result, now_);
    }
    for (const auto& demand : control_->take_release_demands()) {
      interfaces_[demand.src]->on_release_demand(demand, now_);
    }
    control_->take_teardowns_done();  // informational only
  }
  if (data_ != nullptr) {
    for (const auto& done : data_->take_completed()) {
      interfaces_[done.src]->on_transfer_done(done, now_);
    }
  }
}

void Network::step_begin() {
  gate_.reset();
  if (control_ != nullptr) control_->step(now_);
  if (data_ != nullptr) data_->step(now_);
  dispatch_events();
  if (config_.protocol.pcs_only) {
    for (auto& ni : interfaces_) ni->pump_retries(now_);
  }
  fabric_.begin_cycle(now_);
}

void Network::step_shard(NodeId begin, NodeId end, ShardContext& ctx) {
  ctx.clear();
  for (NodeId n = begin; n < end; ++n) {
    interfaces_[n]->pump_streams(now_, ctx.io);
  }
  fabric_.step_nodes(now_, begin, end, ctx.io);
  // Reassembly by count: packets of a segmented message may interleave
  // across VCs, so tail flags alone cannot signal completion. A message
  // only ever ejects at its destination node, so its record is owned by
  // exactly one shard.
  const bool instrumented = instrumentation_.enabled();
  for (const wh::EjectedFlit& e : ctx.io.ejected) {
    MessageRecord& rec = log_.at(e.flit.msg);
    if (++rec.flits_received == rec.length) {
      log_.mark_delivered(e.flit.msg, now_);
      if (instrumented) {
        ctx.events.emit(now_, EventKind::kDelivered, rec.dest, e.flit.msg);
      }
    }
  }
}

void Network::step_commit(std::span<ShardContext* const> contexts) {
  for (ShardContext* ctx : contexts) fabric_.commit_cycle(now_, ctx->io);
  for (ShardContext* ctx : contexts) instrumentation_.flush(ctx->events);
  ++now_;
}

void Network::step() {
  step_begin();
  step_shard(0, topology_.num_nodes(), scratch_ctx_);
  ShardContext* const contexts[] = {&scratch_ctx_};
  step_commit(contexts);
}

void Network::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

std::uint64_t Network::messages_delivered() const {
  std::uint64_t n = 0;
  for (const auto& rec : log_.all()) n += rec.done ? 1 : 0;
  return n;
}

bool Network::quiescent() const {
  if (messages_delivered() != log_.size()) return false;
  if (fabric_.flits_in_flight() != 0) return false;
  if (control_ != nullptr && !control_->idle()) return false;
  if (data_ != nullptr && data_->active_transfers() != 0) return false;
  return true;
}

}  // namespace wavesim::core
