#include "core/control_plane.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/log.hpp"
#include "snap/archive.hpp"

namespace wavesim::core {

namespace {
using topo::KAryNCube;
}  // namespace

ControlPlane::ControlPlane(const topo::KAryNCube& topology,
                           CircuitTable& circuits, wh::LinkGate& gate,
                           const ControlPlaneParams& params,
                           const Instrumentation* instrumentation)
    : topology_(topology), circuits_(circuits), gate_(gate), params_(params),
      instr_(instrumentation), registers_(topology, params.num_switches) {
  if (params.num_switches < 1 || params.max_misroutes < 0 ||
      params.hop_cycles < 1) {
    throw std::invalid_argument("ControlPlane: bad params");
  }
}

void ControlPlane::mark_faulty(NodeId node, std::int32_t switch_index,
                               PortId port) {
  registers_.at(node, switch_index).mark_faulty(port);
  if (static_faulty_.empty()) {
    static_faulty_.assign(
        static_cast<std::size_t>(topology_.num_nodes()) *
            static_cast<std::size_t>(params_.num_switches) *
            static_cast<std::size_t>(topology_.num_ports()),
        0);
  }
  const std::size_t idx =
      (static_cast<std::size_t>(node) *
           static_cast<std::size_t>(params_.num_switches) +
       static_cast<std::size_t>(switch_index)) *
          static_cast<std::size_t>(topology_.num_ports()) +
      static_cast<std::size_t>(port);
  static_faulty_[idx] = 1;
}

bool ControlPlane::path_crosses(const CircuitRecord& rec, NodeId node,
                                PortId port, NodeId peer, PortId back) const {
  NodeId at = rec.src;
  for (PortId out : rec.path) {
    if ((at == node && out == port) || (at == peer && out == back)) {
      return true;
    }
    at = topology_.neighbor(at, out);
  }
  return false;
}

void ControlPlane::release_path(const CircuitRecord& rec) {
  NodeId at = rec.src;
  for (PortId out : rec.path) {
    pcs::SwitchRegisters& regs = registers_.at(at, rec.switch_index);
    switch (regs.status(out)) {
      case pcs::ChannelStatus::kReservedByProbe:
        // Only a probing circuit owns reservations on its own path (the
        // ack is still short of this hop). On a tearing-down circuit a
        // Reserved hop sits in the already-released prefix and belongs to
        // a *foreign* probe that re-acquired the channel: leave it alone
        // (if that probe also crosses the dead link, the probe sweep
        // above already unwound it).
        if (rec.state == CircuitState::kProbing) regs.release_reservation(out);
        break;
      case pcs::ChannelStatus::kBusyCircuit:
        if (regs.owning_circuit(out) == rec.id) regs.release_circuit(out);
        break;
      case pcs::ChannelStatus::kFree:
      case pcs::ChannelStatus::kFaulty:
        break;  // already released (teardown prefix / racing failure)
    }
    at = topology_.neighbor(at, out);
  }
}

void ControlPlane::drop_flits_of(CircuitId circuit) {
  for (TravelFlit& flit : flits_) {
    if (flit.done || flit.circuit != circuit) continue;
    if (flit.kind == pcs::ControlKind::kReleaseRequest) {
      ++stats_.release_requests_discarded;
    }
    flit.done = true;
  }
}

std::vector<KilledCircuit> ControlPlane::fail_link(NodeId node, PortId port) {
  const NodeId peer = topology_.neighbor(node, port);
  if (peer == kInvalidNode) {
    throw std::logic_error("fail_link: no link through that port");
  }
  const PortId back = KAryNCube::opposite(port);

  // 1. Kill every probe holding a reservation across the link: unwind its
  //    whole reserved path and report a failed attempt, which drives the
  //    source interface's normal retry-or-fallback machinery.
  std::vector<ProbeId> doomed;
  for (const ActiveProbe& ap : probes_) {
    for (const Hop& hop : ap.stack) {
      if ((hop.from == node && hop.out_port == port) ||
          (hop.from == peer && hop.out_port == back)) {
        doomed.push_back(ap.probe.id);
        break;
      }
    }
  }
  for (ProbeId id : doomed) {
    const auto it = std::lower_bound(
        probes_.begin(), probes_.end(), id,
        [](const ActiveProbe& ap, ProbeId want) { return ap.probe.id < want; });
    ActiveProbe& ap = *it;
    for (const Hop& hop : ap.stack) {
      registers_.at(hop.from, ap.probe.switch_index)
          .release_reservation(hop.out_port);
    }
    ap.rec->path.clear();
    ++stats_.probes_killed;
    fail_probe(ap);  // erases the probe
  }

  // 2. Kill every circuit whose path crosses the link. Probing circuits
  //    whose probe just died have an empty path and are skipped; probing
  //    circuits with an ack in flight get a failed ProbeResult (retry);
  //    tearing-down circuits complete abruptly; established circuits are
  //    reported to the Network for cache invalidation and recovery.
  std::vector<KilledCircuit> killed;
  for (CircuitId id : circuits_.active_ids()) {
    CircuitRecord& rec = circuits_.at(id);
    if (!path_crosses(rec, node, port, peer, back)) continue;
    release_path(rec);
    drop_flits_of(id);
    ++stats_.circuits_killed;
    switch (rec.state) {
      case CircuitState::kProbing:
        // The setup ack was in flight; the attempt failed after all.
        rec.path.clear();
        ++stats_.probes_failed;
        probe_results_.push_back(ProbeResult{kInvalidProbe, id, rec.src,
                                             /*success=*/false,
                                             rec.switch_index});
        break;
      case CircuitState::kEstablished:
        killed.push_back(KilledCircuit{id, rec.src, rec.dest});
        break;
      case CircuitState::kTearingDown:
        rec.state = CircuitState::kDead;
        ++stats_.teardowns_completed;
        circuits_.retire(id);
        break;
      case CircuitState::kDead:
        throw std::logic_error("fail_link: dead circuit still active");
    }
  }

  // 3. Only now are the link's channels guaranteed free: fence them off
  //    on every wave switch, in both directions.
  for (std::int32_t s = 0; s < params_.num_switches; ++s) {
    pcs::SwitchRegisters& here = registers_.at(node, s);
    if (here.status(port) != pcs::ChannelStatus::kFaulty) {
      here.mark_faulty(port);
    }
    pcs::SwitchRegisters& there = registers_.at(peer, s);
    if (there.status(back) != pcs::ChannelStatus::kFaulty) {
      there.mark_faulty(back);
    }
  }
  return killed;
}

void ControlPlane::restore_link(NodeId node, PortId port) {
  const NodeId peer = topology_.neighbor(node, port);
  if (peer == kInvalidNode) {
    throw std::logic_error("restore_link: no link through that port");
  }
  const PortId back = KAryNCube::opposite(port);
  const auto statically_faulty = [&](NodeId n, std::int32_t s, PortId p) {
    if (static_faulty_.empty()) return false;
    const std::size_t idx =
        (static_cast<std::size_t>(n) *
             static_cast<std::size_t>(params_.num_switches) +
         static_cast<std::size_t>(s)) *
            static_cast<std::size_t>(topology_.num_ports()) +
        static_cast<std::size_t>(p);
    return static_faulty_[idx] != 0;
  };
  for (std::int32_t s = 0; s < params_.num_switches; ++s) {
    if (!statically_faulty(node, s, port)) {
      registers_.at(node, s).clear_faulty(port);
    }
    if (!statically_faulty(peer, s, back)) {
      registers_.at(peer, s).clear_faulty(back);
    }
  }
}

ProbeId ControlPlane::launch_probe(CircuitId circuit, bool force) {
  CircuitRecord& rec = circuits_.at(circuit);
  if (rec.state != CircuitState::kProbing) {
    throw std::logic_error("launch_probe: circuit not in probing state");
  }
  ActiveProbe ap;
  ap.rec = &rec;
  ap.probe.id = next_probe_++;
  ap.probe.circuit = circuit;
  ap.probe.src = rec.src;
  ap.probe.dest = rec.dest;
  ap.probe.force = force;
  ap.probe.switch_index = rec.switch_index;
  ap.node = rec.src;
  probes_.push_back(std::move(ap));  // ids are monotone: stays sorted
  ++stats_.probes_launched;
  return probes_.back().probe.id;
}

bool ControlPlane::probe_active(ProbeId probe) const {
  const auto it = std::lower_bound(
      probes_.begin(), probes_.end(), probe,
      [](const ActiveProbe& ap, ProbeId id) { return ap.probe.id < id; });
  return it != probes_.end() && it->probe.id == probe;
}

std::vector<ControlPlane::WaitingProbe> ControlPlane::waiting_probes() const {
  std::vector<WaitingProbe> out;
  for (const ActiveProbe& ap : probes_) {
    if (!ap.waiting) continue;
    out.push_back(WaitingProbe{ap.probe.id, ap.node, ap.probe.switch_index,
                               ap.wait_port, ap.wait_was_acked});
  }
  return out;
}

void ControlPlane::erase_probe(ProbeId id) {
  const auto it = std::lower_bound(
      probes_.begin(), probes_.end(), id,
      [](const ActiveProbe& ap, ProbeId want) { return ap.probe.id < want; });
  if (it == probes_.end() || it->probe.id != id) {
    throw std::logic_error("erase_probe: unknown probe");
  }
  probes_.erase(it);
}

void ControlPlane::start_teardown(CircuitId circuit) {
  CircuitRecord& rec = circuits_.at(circuit);
  if (rec.state != CircuitState::kEstablished) {
    throw std::logic_error("start_teardown: circuit not established");
  }
  if (rec.in_use) {
    throw std::logic_error("start_teardown: circuit has a message in transit");
  }
  rec.state = CircuitState::kTearingDown;
  TravelFlit flit;
  flit.kind = pcs::ControlKind::kTeardown;
  flit.circuit = circuit;
  flit.switch_index = rec.switch_index;
  flit.node = rec.src;
  flit.port = rec.path.empty() ? kInvalidPort : rec.path.front();
  if (flit.port == kInvalidPort) {
    throw std::logic_error("start_teardown: circuit has no path");
  }
  flits_.push_back(flit);
  ++stats_.teardowns_started;
}

const std::vector<pcs::PortView>& ControlPlane::build_view(
    const ActiveProbe& ap) {
  const pcs::SwitchRegisters& regs =
      registers_.at(ap.node, ap.probe.switch_index);
  std::vector<pcs::PortView>& view = view_scratch_;
  view.assign(topology_.num_ports(), pcs::PortView::kUnusable);
  const std::uint32_t searched = history_.mask(ap.probe.id, ap.node);
  for (PortId p = 0; p < topology_.num_ports(); ++p) {
    if (!topology_.has_neighbor(ap.node, p)) continue;
    if ((searched >> p) & 1u) continue;
    switch (regs.status(p)) {
      case pcs::ChannelStatus::kFree:
        view[p] = pcs::PortView::kAvailable;
        break;
      case pcs::ChannelStatus::kReservedByProbe:
        view[p] = pcs::PortView::kBusyPending;
        break;
      case pcs::ChannelStatus::kBusyCircuit:
        // Commit and Ack-Returned travel together in this implementation,
        // so a busy channel is an established circuit's channel; it may
        // also belong to a circuit already being torn down, in which case
        // the wait below resolves when the teardown frees it.
        view[p] = regs.ack_returned(p) ? pcs::PortView::kBusyEstablished
                                       : pcs::PortView::kBusyPending;
        break;
      case pcs::ChannelStatus::kFaulty:
        break;  // stays kUnusable
    }
  }
  return view;
}

void ControlPlane::finish_probe_success(ActiveProbe& ap, Cycle now) {
  // Convert the probe into an ack flit that walks back to the source,
  // committing each reserved pair and setting Ack-Returned on the way.
  ++stats_.probes_succeeded;
  TravelFlit ack;
  ack.kind = pcs::ControlKind::kAck;
  ack.circuit = ap.probe.circuit;
  ack.switch_index = ap.probe.switch_index;
  ack.node = ap.node;
  ack.port = ap.arrival_port;  // direction toward the source
  ack.ready_at = now + params_.hop_cycles;
  if (ap.node != ap.probe.src && ack.port == kInvalidPort) {
    throw std::logic_error("probe at destination without arrival port");
  }
  if (ap.node == ap.probe.src) {
    // Zero-hop circuit (src == dest) cannot occur: protocol layer never
    // requests circuits to self.
    throw std::logic_error("circuit to self");
  }
  flits_.push_back(ack);
  history_.erase(ap.probe.id);
  erase_probe(ap.probe.id);  // invalidates ap
}

void ControlPlane::fail_probe(ActiveProbe& ap) {
  ++stats_.probes_failed;
  probe_results_.push_back(ProbeResult{ap.probe.id, ap.probe.circuit,
                                       ap.probe.src, /*success=*/false,
                                       ap.probe.switch_index});
  const ProbeId id = ap.probe.id;
  history_.erase(id);
  erase_probe(id);  // invalidates ap
}

void ControlPlane::request_release(ActiveProbe& ap, PortId port, Cycle now) {
  const pcs::SwitchRegisters& regs =
      registers_.at(ap.node, ap.probe.switch_index);
  const CircuitId victim = regs.owning_circuit(port);
  if (victim == ap.release_requested_for &&
      now < ap.release_requested_at +
                static_cast<Cycle>(params_.release_retry_cycles)) {
    return;  // already asked recently
  }
  ap.release_requested_for = victim;
  ap.release_requested_at = now;
  if (!circuits_.contains(victim)) return;  // racing teardown finished
  const CircuitRecord& rec = circuits_.at(victim);
  if (rec.src == ap.node) {
    // The victim starts here: demand release from the local interface
    // directly (paper: "This circuit starts at the current node").
    release_demands_.push_back(ReleaseDemand{victim, ap.node});
    ++stats_.release_requests_sent;
    return;
  }
  // Send a release request toward the victim's source over the reverse
  // control path.
  TravelFlit req;
  req.kind = pcs::ControlKind::kReleaseRequest;
  req.circuit = victim;
  req.switch_index = ap.probe.switch_index;
  req.node = ap.node;
  req.port = regs.reverse_map(port);  // input port of the victim circuit here
  if (req.port == kInvalidPort) return;  // torn down in this very cycle
  flits_.push_back(req);
  ++stats_.release_requests_sent;
}

void ControlPlane::step_probe(ActiveProbe& ap, Cycle now) {
  if (now < ap.ready_at) return;  // still traversing the previous hop
  ++ap.steps;
  stats_.max_probe_steps = std::max(stats_.max_probe_steps, ap.steps);

  pcs::SwitchRegisters& here = registers_.at(ap.node, ap.probe.switch_index);
  CircuitRecord& rec = *ap.rec;

  if (ap.node == ap.probe.dest) {
    finish_probe_success(ap, now);
    return;
  }

  const auto& view = build_view(ap);
  const auto decision =
      pcs::decide(topology_, ap.node, ap.probe.dest, view, ap.arrival_port,
                  ap.probe.misroutes, params_.max_misroutes, ap.probe.force,
                  params_.mutate_force_unacked);

  switch (decision.action) {
    case pcs::MbmAction::kDeliver:
      finish_probe_success(ap, now);
      return;

    case pcs::MbmAction::kAdvance: {
      if (!gate_.try_acquire(ap.node, decision.port)) return;  // link busy
      const PortId in_port =
          ap.arrival_port == kInvalidPort ? pcs::kLocalEndpoint
                                          : ap.arrival_port;
      here.reserve(decision.port, ap.probe.id, in_port);
      history_.mark(ap.probe.id, ap.node, decision.port);
      ap.stack.push_back(Hop{ap.node, decision.port, ap.probe.misroutes});
      if (decision.misroute) {
        ++ap.probe.misroutes;
        ++stats_.probe_misroutes;
        if (instr_ != nullptr) {
          instr_->emit(now, EventKind::kMisrouted, ap.node, kInvalidMessage,
                       ap.probe.circuit);
        }
      }
      rec.path.push_back(decision.port);
      ap.waiting = false;
      ap.wait_port = kInvalidPort;
      ap.node = topology_.neighbor(ap.node, decision.port);
      ap.arrival_port = KAryNCube::opposite(decision.port);
      ap.ready_at = now + params_.hop_cycles;
      ++stats_.probe_advances;
      return;
    }

    case pcs::MbmAction::kWaitForce: {
      if (!ap.waiting) {
        sim::log_debug("probe ", ap.probe.id, " force-waits at node ",
                       ap.node, " port ", decision.port, " on circuit ",
                       here.owning_circuit(decision.port));
      }
      ++stats_.force_waits;
      ap.waiting = true;
      ap.wait_port = decision.port;
      ap.wait_was_acked =
          view[decision.port] == pcs::PortView::kBusyEstablished;
      request_release(ap, decision.port, now);
      return;
    }

    case pcs::MbmAction::kBacktrack: {
      ap.waiting = false;
      ap.wait_port = kInvalidPort;
      if (ap.stack.empty()) {
        fail_probe(ap);  // exhausted the search from the source
        return;
      }
      // Travel back over the reserved control channel (reverse direction
      // of the physical link we arrived through).
      if (!gate_.try_acquire(ap.node, ap.arrival_port)) return;
      const Hop hop = ap.stack.back();
      ap.stack.pop_back();
      registers_.at(hop.from, ap.probe.switch_index)
          .release_reservation(hop.out_port);
      ap.probe.misroutes = hop.misroutes_before;
      if (rec.path.empty()) {
        throw std::logic_error("backtrack with empty circuit path");
      }
      rec.path.pop_back();
      ap.node = hop.from;
      ap.arrival_port = ap.stack.empty()
                            ? kInvalidPort
                            : KAryNCube::opposite(ap.stack.back().out_port);
      ap.ready_at = now + params_.hop_cycles;
      ++stats_.probe_backtracks;
      if (instr_ != nullptr) {
        instr_->emit(now, EventKind::kBacktracked, ap.node, kInvalidMessage,
                     ap.probe.circuit);
      }
      return;
    }
  }
}

void ControlPlane::step_flit(TravelFlit& flit, Cycle now) {
  if (now < flit.ready_at) return;  // still traversing the previous hop
  switch (flit.kind) {
    case pcs::ControlKind::kAck: {
      // Move one hop toward the source; commit + set Ack-Returned on the
      // upstream channel just crossed.
      if (!gate_.try_acquire(flit.node, flit.port)) return;
      const NodeId upstream = topology_.neighbor(flit.node, flit.port);
      const PortId up_out = KAryNCube::opposite(flit.port);
      pcs::SwitchRegisters& regs = registers_.at(upstream, flit.switch_index);
      regs.commit(up_out, flit.circuit);
      regs.mark_ack_returned(up_out);
      flit.node = upstream;
      flit.port = regs.reverse_map(up_out);
      flit.ready_at = now + params_.hop_cycles;
      if (flit.port == pcs::kLocalEndpoint) {
        // Reached the source: the circuit is established.
        CircuitRecord& rec = circuits_.at(flit.circuit);
        rec.state = CircuitState::kEstablished;
        flit.done = true;
        ++stats_.acks_completed;
        probe_results_.push_back(ProbeResult{kInvalidProbe, flit.circuit,
                                             rec.src, /*success=*/true,
                                             rec.switch_index});
      }
      return;
    }

    case pcs::ControlKind::kTeardown: {
      if (!gate_.try_acquire(flit.node, flit.port)) return;
      pcs::SwitchRegisters& regs = registers_.at(flit.node, flit.switch_index);
      regs.release_circuit(flit.port);
      const NodeId next = topology_.neighbor(flit.node, flit.port);
      const PortId next_in = KAryNCube::opposite(flit.port);
      flit.node = next;
      flit.port = registers_.at(next, flit.switch_index).direct_map(next_in);
      flit.ready_at = now + params_.hop_cycles;
      if (flit.port == kInvalidPort) {
        // Reached the destination end: the whole circuit is free.
        CircuitRecord& rec = circuits_.at(flit.circuit);
        rec.state = CircuitState::kDead;
        teardowns_done_.push_back(TeardownDone{flit.circuit});
        circuits_.retire(flit.circuit);
        flit.done = true;
        ++stats_.teardowns_completed;
      }
      return;
    }

    case pcs::ControlKind::kReleaseRequest: {
      // Walk toward the circuit's source over reserved control channels.
      // Any mapping mismatch means a concurrent teardown: discard (the
      // channel the waiting probe wants is being freed anyway).
      if (flit.port == pcs::kLocalEndpoint) {
        release_demands_.push_back(ReleaseDemand{flit.circuit, flit.node});
        flit.done = true;
        return;
      }
      if (!gate_.try_acquire(flit.node, flit.port)) return;
      const NodeId upstream = topology_.neighbor(flit.node, flit.port);
      const PortId up_out = KAryNCube::opposite(flit.port);
      const pcs::SwitchRegisters& regs =
          registers_.at(upstream, flit.switch_index);
      if (regs.status(up_out) != pcs::ChannelStatus::kBusyCircuit ||
          regs.owning_circuit(up_out) != flit.circuit) {
        flit.done = true;  // concurrent teardown: discard
        ++stats_.release_requests_discarded;
        return;
      }
      flit.node = upstream;
      flit.port = regs.reverse_map(up_out);
      flit.ready_at = now + params_.hop_cycles;
      if (flit.port == pcs::kLocalEndpoint) {
        release_demands_.push_back(ReleaseDemand{flit.circuit, flit.node});
        flit.done = true;
      }
      return;
    }

    case pcs::ControlKind::kProbe:
      throw std::logic_error("probe inside travelling-flit list");
  }
}

void ControlPlane::step(Cycle now) {
  // Travelling flits first (acks, teardowns, release requests make
  // progress guarantees possible), then probes, both in creation order
  // for determinism.
  for (auto& flit : flits_) {
    if (!flit.done) step_flit(flit, now);
  }
  flits_.erase(std::remove_if(flits_.begin(), flits_.end(),
                              [](const TravelFlit& f) { return f.done; }),
               flits_.end());

  // Walk in ascending-id (= creation) order. step_probe only ever erases
  // the probe it is stepping (shifting later probes down one slot), so
  // the index advances exactly when no erase happened.
  for (std::size_t i = 0; i < probes_.size();) {
    const ProbeId id = probes_[i].probe.id;
    step_probe(probes_[i], now);
    if (i < probes_.size() && probes_[i].probe.id == id) ++i;
  }
}

std::string ControlPlane::debug_dump() const {
  std::ostringstream os;
  for (const ActiveProbe& ap : probes_) {
    os << "probe " << ap.probe.id << " circuit " << ap.probe.circuit << " "
       << ap.probe.src << "->" << ap.probe.dest << " sw "
       << ap.probe.switch_index << (ap.probe.force ? " FORCE" : "")
       << " at node " << ap.node << " misroutes " << ap.probe.misroutes
       << " depth " << ap.stack.size();
    if (ap.waiting) {
      os << " WAITING on port " << ap.wait_port << " (requested release of "
         << ap.release_requested_for << ")";
      const auto& regs = registers_.at(ap.node, ap.probe.switch_index);
      os << " port-status " << pcs::to_string(regs.status(ap.wait_port))
         << " owner " << regs.owning_circuit(ap.wait_port);
    }
    os << "\n";
  }
  for (const auto& flit : flits_) {
    if (flit.done) continue;
    os << pcs::to_string(flit.kind) << " flit circuit " << flit.circuit
       << " sw " << flit.switch_index << " at node " << flit.node << " port "
       << flit.port << "\n";
  }
  return os.str();
}

std::vector<ProbeResult> ControlPlane::take_probe_results() {
  return std::exchange(probe_results_, {});
}

std::vector<ReleaseDemand> ControlPlane::take_release_demands() {
  return std::exchange(release_demands_, {});
}

std::vector<TeardownDone> ControlPlane::take_teardowns_done() {
  return std::exchange(teardowns_done_, {});
}

void ControlPlane::snap(snap::Archive& ar) {
  registers_.snap(ar);
  history_.snap(ar);
  ar.vec(probes_, [](snap::Archive& a, ActiveProbe& ap) {
    a.pod(ap.probe.id);
    a.pod(ap.probe.circuit);
    a.pod(ap.probe.src);
    a.pod(ap.probe.dest);
    a.pod(ap.probe.backtrack);
    a.pod(ap.probe.misroutes);
    a.pod(ap.probe.force);
    a.pod(ap.probe.switch_index);
    a.pod(ap.node);
    a.pod(ap.arrival_port);
    a.vec(ap.stack, [](snap::Archive& b, Hop& hop) {
      b.pod(hop.from);
      b.pod(hop.out_port);
      b.pod(hop.misroutes_before);
    });
    a.pod(ap.waiting);
    a.pod(ap.wait_port);
    a.pod(ap.wait_was_acked);
    a.pod(ap.release_requested_for);
    a.pod(ap.release_requested_at);
    a.pod(ap.ready_at);
    a.pod(ap.steps);
  });
  if (ar.reading()) {
    // The cached record pointer is re-resolved, never serialized: a
    // probing circuit is always live in the table.
    for (ActiveProbe& ap : probes_) ap.rec = &circuits_.at(ap.probe.circuit);
  }
  ar.vec(flits_, [](snap::Archive& a, TravelFlit& f) {
    a.pod(f.kind);
    a.pod(f.circuit);
    a.pod(f.switch_index);
    a.pod(f.node);
    a.pod(f.port);
    a.pod(f.ready_at);
    a.pod(f.done);
  });
  ar.vec(probe_results_, [](snap::Archive& a, ProbeResult& r) {
    a.pod(r.probe);
    a.pod(r.circuit);
    a.pod(r.src);
    a.pod(r.success);
    a.pod(r.switch_index);
  });
  ar.vec(release_demands_, [](snap::Archive& a, ReleaseDemand& d) {
    a.pod(d.circuit);
    a.pod(d.src);
  });
  ar.vec(teardowns_done_, [](snap::Archive& a, TeardownDone& t) {
    a.pod(t.circuit);
  });
  ar.vec_pod(static_faulty_);
  ar.pod(next_probe_);
  ar.pod(stats_.probes_launched);
  ar.pod(stats_.probes_succeeded);
  ar.pod(stats_.probes_failed);
  ar.pod(stats_.probe_advances);
  ar.pod(stats_.probe_backtracks);
  ar.pod(stats_.probe_misroutes);
  ar.pod(stats_.force_waits);
  ar.pod(stats_.release_requests_sent);
  ar.pod(stats_.release_requests_discarded);
  ar.pod(stats_.teardowns_started);
  ar.pod(stats_.teardowns_completed);
  ar.pod(stats_.acks_completed);
  ar.pod(stats_.probes_killed);
  ar.pod(stats_.circuits_killed);
  ar.pod(stats_.max_probe_steps);
}

}  // namespace wavesim::core
