#include "core/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavesim::core {

const char* to_string(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kProbing: return "probing";
    case CircuitState::kEstablished: return "established";
    case CircuitState::kTearingDown: return "tearing-down";
    case CircuitState::kDead: return "dead";
  }
  return "?";
}

CircuitId CircuitTable::create(NodeId src, NodeId dest,
                               std::int32_t switch_index) {
  const CircuitId id = next_id_++;
  CircuitRecord rec;
  rec.id = id;
  rec.src = src;
  rec.dest = dest;
  rec.switch_index = switch_index;
  table_.emplace(id, std::move(rec));
  return id;
}

CircuitRecord& CircuitTable::at(CircuitId id) {
  const auto it = table_.find(id);
  if (it == table_.end()) {
    throw std::out_of_range("CircuitTable: unknown circuit");
  }
  return it->second;
}

const CircuitRecord& CircuitTable::at(CircuitId id) const {
  const auto it = table_.find(id);
  if (it == table_.end()) {
    throw std::out_of_range("CircuitTable: unknown circuit");
  }
  return it->second;
}

bool CircuitTable::contains(CircuitId id) const {
  return table_.find(id) != table_.end();
}

void CircuitTable::retire(CircuitId id) { table_.erase(id); }

std::vector<CircuitId> CircuitTable::active_ids() const {
  std::vector<CircuitId> ids;
  ids.reserve(table_.size());
  for (const auto& [id, rec] : table_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace wavesim::core
