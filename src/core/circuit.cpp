#include "core/circuit.hpp"

#include <algorithm>
#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::core {

const char* to_string(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kProbing: return "probing";
    case CircuitState::kEstablished: return "established";
    case CircuitState::kTearingDown: return "tearing-down";
    case CircuitState::kDead: return "dead";
  }
  return "?";
}

CircuitId CircuitTable::create(NodeId src, NodeId dest,
                               std::int32_t switch_index) {
  const CircuitId id = next_id_++;
  CircuitRecord rec;
  rec.id = id;
  rec.src = src;
  rec.dest = dest;
  rec.switch_index = switch_index;
  table_.emplace(id, std::move(rec));
  return id;
}

CircuitRecord& CircuitTable::at(CircuitId id) {
  const auto it = table_.find(id);
  if (it == table_.end()) {
    throw std::out_of_range("CircuitTable: unknown circuit");
  }
  return it->second;
}

const CircuitRecord& CircuitTable::at(CircuitId id) const {
  const auto it = table_.find(id);
  if (it == table_.end()) {
    throw std::out_of_range("CircuitTable: unknown circuit");
  }
  return it->second;
}

bool CircuitTable::contains(CircuitId id) const {
  return table_.find(id) != table_.end();
}

void CircuitTable::retire(CircuitId id) { table_.erase(id); }

std::vector<CircuitId> CircuitTable::active_ids() const {
  std::vector<CircuitId> ids;
  ids.reserve(table_.size());
  // [det: local] collect-then-sort; bucket order never escapes.
  for (const auto& [id, rec] : table_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void snap_circuit_record(snap::Archive& ar, CircuitRecord& rec) {
  ar.pod(rec.id);
  ar.pod(rec.src);
  ar.pod(rec.dest);
  ar.pod(rec.switch_index);
  ar.pod(rec.state);
  ar.vec_pod(rec.path);
  ar.pod(rec.in_use);
  ar.pod(rec.pending_release);
  ar.pod(rec.established_at);
  ar.pod(rec.messages_carried);
  ar.pod(rec.buffer_flits);
}

void CircuitTable::snap(snap::Archive& ar) {
  ar.pod(next_id_);
  if (ar.writing()) {
    std::uint64_t n = table_.size();
    ar.pod(n);
    for (const CircuitId id : active_ids()) {
      snap_circuit_record(ar, table_.at(id));
    }
  } else {
    table_.clear();
    std::uint64_t n = 0;
    ar.pod(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CircuitRecord rec;
      snap_circuit_record(ar, rec);
      const CircuitId id = rec.id;
      table_.emplace(id, std::move(rec));
    }
  }
}

}  // namespace wavesim::core
