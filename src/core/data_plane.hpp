// Circuit data plane: wave-pipelined transfers over established circuits.
//
// Once a circuit is established there is no link-level flow control and no
// per-hop buffering (paper section 2): flits stream across switches
// S_1..S_k at the wave clock. We model a circuit as a fixed-latency pipe of
// `hops / wave_clock_factor` base cycles carrying `circuit_flits_per_cycle`
// flits per base cycle, governed by the end-to-end window protocol between
// the injection buffer and the delivery buffer: at most `window` flits may
// be unacknowledged, acks returning over the circuit's reverse control
// path with the same pipe latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/circuit.hpp"
#include "sim/types.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

struct DataPlaneParams {
  double flits_per_cycle = 4.0;  ///< circuit bandwidth in flits / base cycle
  double wave_clock_factor = 4.0;
  std::int32_t window = 32;      ///< end-to-end window, flits
};

/// A message transfer completed: the tail flit's ack reached the source
/// (the paper's trigger for clearing the In-use bit).
struct TransferDone {
  MessageId msg = kInvalidMessage;
  CircuitId circuit = kInvalidCircuit;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  Cycle delivered_at = 0;  ///< last flit reached the destination
  Cycle acked_at = 0;      ///< last ack reached the source
};

class DataPlane {
 public:
  DataPlane(CircuitTable& circuits, const DataPlaneParams& params);

  /// Begin transmitting `length` flits of `msg` on `circuit` (state must
  /// be kEstablished and not in_use; sets in_use). The first flit enters
  /// the pipe no earlier than `now + start_delay` (software messaging
  /// overhead and/or delivery-buffer re-allocation).
  void start_transfer(MessageId msg, CircuitId circuit, std::int32_t length,
                      Cycle now, Cycle start_delay = 0);

  void step(Cycle now);

  std::vector<TransferDone> take_completed();

  /// The circuit died (dynamic link failure): drop its in-flight transfer,
  /// if any, and return the carried message so the source can resend it
  /// over the wormhole plane (kInvalidMessage when the circuit was idle).
  /// Flits already delivered are lost with the circuit; the message only
  /// counts as delivered when some path carries it end to end.
  MessageId abort_transfer(CircuitId circuit);

  std::size_t active_transfers() const noexcept { return transfers_.size(); }
  std::uint64_t flits_delivered() const noexcept { return flits_delivered_; }
  std::uint64_t transfers_aborted() const noexcept { return transfers_aborted_; }

  /// Pipe latency in base cycles for a circuit of `hops` hops.
  Cycle pipe_latency(std::int32_t hops) const;

  /// Serialize in-flight transfers, undrained completions, and counters
  /// (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  struct Transfer {
    MessageId msg = kInvalidMessage;
    CircuitId circuit = kInvalidCircuit;
    std::int32_t length = 0;
    std::int32_t sent = 0;    ///< flits injected so far
    std::int32_t acked = 0;   ///< flit acks received at the source
    double send_credit = 0.0; ///< fractional-bandwidth accumulator
    Cycle started = 0;
    Cycle not_before = 0;     ///< start delay (software / re-allocation)
    Cycle pipe = 1;           ///< one-way latency in base cycles
    Cycle last_delivery = 0;
    /// (cycle flit arrives at dest) for in-flight flits; FIFO popped by
    /// advancing `deliveries_head` (no O(n) front erase on the hot path).
    std::vector<Cycle> deliveries;
    std::size_t deliveries_head = 0;
  };

  CircuitTable& circuits_;
  DataPlaneParams params_;  // [snap: skip] config, fixed at construction
  std::map<MessageId, Transfer> transfers_;
  std::vector<TransferDone> completed_;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t transfers_aborted_ = 0;
};

}  // namespace wavesim::core
