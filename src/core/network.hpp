// The wave-switching network: an array of wave routers (paper Fig. 2).
//
// Each router is the composition of an S0 wormhole router (wh::Fabric), a
// slice of the PCS control plane (k control VCs sharing S0 link bandwidth)
// and k wave-pipelined circuit switches (the data plane). This class wires
// the planes together, injects static faults, owns the per-node interfaces
// and advances everything in the per-cycle order that gives control
// traffic link priority.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/control_plane.hpp"
#include "core/data_plane.hpp"
#include "core/instrumentation.hpp"
#include "core/message.hpp"
#include "core/node_interface.hpp"
#include "fault/plane.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "wormhole/fabric.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

/// Everything one shard accumulates while stepping its node range: the
/// fabric outbox plus instrumentation events staged for the ordered flush.
struct ShardContext {
  wh::ShardIo io;
  EventBuffer events;
  /// Messages fully reassembled by this shard this cycle (summed into the
  /// network's delivered counter at commit).
  std::uint64_t messages_delivered = 0;

  void clear() noexcept {
    io.clear();
    events.clear();
    messages_delivered = 0;
  }
};

class Network {
 public:
  explicit Network(const sim::SimConfig& config);

  const sim::SimConfig& config() const noexcept { return config_; }
  const topo::KAryNCube& topology() const noexcept { return topology_; }
  Cycle now() const noexcept { return now_; }

  /// Offer a message; protocol handling starts this cycle.
  MessageId send(NodeId src, NodeId dest, std::int32_t length);

  /// Queue a message to be offered at cycle `at` (>= now, non-decreasing
  /// across calls). Equivalent to calling send() at the top of cycle
  /// `at`: step_begin() offers every due message, in schedule order,
  /// before anything else runs. Pre-scheduling lets workload generators
  /// hand a lookahead engine whole spans of cycles at once.
  void schedule_send(NodeId src, NodeId dest, std::int32_t length, Cycle at);

  /// CARP primitives (valid on any circuit-capable configuration).
  /// `max_message_flits` sizes the circuit's end-point buffers (0 = use
  /// the speculative CLRP size).
  bool establish_circuit(NodeId src, NodeId dest,
                         std::int32_t max_message_flits = 0);
  void release_circuit(NodeId src, NodeId dest);

  void step();
  void run(Cycle cycles);

  // -- sharded stepping (engine seam) --------------------------------------
  // step() is exactly step_begin + step_shard over the full node range +
  // step_commit. A parallel engine runs step_begin, then step_shard
  // concurrently on disjoint contiguous node ranges (one ShardContext
  // each), then step_commit with the contexts in ascending node order.
  // Because every cross-node effect is buffered in the context and merged
  // in node order, the result is bit-identical to the sequential step for
  // any shard/thread count (see docs/ENGINE.md).

  /// Sequential prologue: gate reset, control/data planes, event dispatch,
  /// PCS retry pumping, delay-line drain. All sequential id allocation
  /// (probes, circuits) happens here.
  void step_begin();
  /// Parallel-safe on disjoint node ranges: wormhole injection pumping,
  /// router pipelines and message reassembly for nodes [begin, end).
  void step_shard(NodeId begin, NodeId end, ShardContext& ctx);
  /// Sequential epilogue: merge shard outboxes in the given order (must be
  /// ascending node ranges), replay staged events, advance the clock.
  void step_commit(std::span<ShardContext* const> contexts);

  // -- lookahead windows (engine seam, continued) ---------------------------
  // When the sequential planes are idle, a lookahead engine may run each
  // shard for several consecutive cycles between barriers: one
  // step_window_shard call per (shard, local cycle), with
  // window_advance_local between local cycles, then one
  // step_commit_window for the whole grid. The engine is responsible for
  // choosing a window length that provably admits no cross-shard
  // interaction before the barrier (see src/engine/engine.cpp and
  // docs/ENGINE.md).

  /// step_shard with an explicit cycle stamp: steps nodes [begin, end)
  /// as of cycle `at` (which may be ahead of now() inside a window).
  void step_window_shard(NodeId begin, NodeId end, ShardContext& ctx,
                         Cycle at);
  /// Between two local cycles of a window: reset the gate channels and
  /// absorb the previous cycle's shard-local transport for nodes
  /// [begin, end). Owner-partitioned writes only; callable concurrently
  /// on disjoint ranges.
  void window_advance_local(NodeId begin, NodeId end, ShardContext& prev);
  /// Barrier commit of a whole window: `contexts` holds rows * shards
  /// entries, row-major (all shards of local cycle 0, then 1, ...), each
  /// row committed in ascending shard order at its own cycle. Advances
  /// the clock by `rows`.
  void step_commit_window(std::span<ShardContext* const> contexts,
                          Cycle rows);

  /// True when nothing sequential can act between cycles: no PCS-only
  /// retry pumping, control plane idle, data plane idle. A window may
  /// only span cycles while this holds.
  bool window_ready() const;
  /// This configuration can carry circuits (submit may touch the control
  /// plane, so scheduled sends cannot be offered early).
  bool circuit_capable() const noexcept { return control_ != nullptr; }
  /// An event sink is installed (events must be emitted in cycle order,
  /// which also rules out offering scheduled sends early).
  bool instrumentation_enabled() const noexcept {
    return instrumentation_.enabled();
  }
  /// Scheduled sends may be offered ahead of their cycle (with their own
  /// cycle stamp): nothing sequential observes the early offer.
  bool early_send_ok() const noexcept {
    return !circuit_capable() && !instrumentation_enabled();
  }
  /// Cycle of the earliest pending scheduled send (Cycle max when none).
  Cycle next_scheduled_send() const noexcept;
  /// Offer every scheduled send due before `horizon` now, stamped with
  /// its own cycle. Caller must have checked early_send_ok().
  void process_scheduled_sends(Cycle horizon);

  // -- component access ----------------------------------------------------
  const MessageLog& messages() const noexcept { return log_; }
  wh::Fabric& fabric() noexcept { return fabric_; }
  const wh::Fabric& fabric() const noexcept { return fabric_; }
  ControlPlane* control_plane() noexcept { return control_.get(); }
  const ControlPlane* control_plane() const noexcept { return control_.get(); }
  DataPlane* data_plane() noexcept { return data_.get(); }
  const DataPlane* data_plane() const noexcept { return data_.get(); }
  const CircuitTable& circuits() const noexcept { return circuits_; }
  NodeInterface& interface(NodeId node) { return *interfaces_.at(node); }
  const NodeInterface& interface(NodeId node) const {
    return *interfaces_.at(node);
  }

  /// Every offered message delivered, all planes drained, the fault
  /// schedule exhausted and the distance-vector plane dormant.
  bool quiescent() const;
  /// quiescent() without the fault clause: all traffic is delivered and
  /// the protocol planes are drained (the network may still be waiting on
  /// scheduled fault events or DV convergence).
  bool traffic_quiescent() const;
  std::uint64_t messages_delivered() const;

  /// Number of circuit data channels statically marked faulty.
  std::int64_t faulty_channels() const noexcept { return faulty_channels_; }

  /// Dynamic fault plane (nullptr without a fault schedule).
  const fault::FaultPlane* fault_plane() const noexcept { return fault_.get(); }
  /// Cycle of the next scheduled fault event (Cycle max when none remain):
  /// a lookahead window must not leap across it.
  Cycle next_fault_event() const noexcept {
    return fault_ != nullptr ? fault_->next_event_at()
                             : std::numeric_limits<Cycle>::max();
  }

  /// Install an event sink (timelines, debugging, trace capture).
  void set_event_sink(Instrumentation::Sink sink) {
    instrumentation_.set_sink(std::move(sink));
  }

  /// Serialize all mutable simulation state (snapshot/restore). Must be
  /// called between whole steps (the engine quiesce seam,
  /// core/step_engine.hpp): mid-step scratch, gate claims, and staged
  /// shard contexts are never part of a snapshot. On restore the caller
  /// constructs a Network from the identical config first; structural
  /// state (topology, routing, plane wiring, fault timeline) comes from
  /// that construction and only mutable state is overwritten.
  void snap(snap::Archive& ar);

 private:
  /// A send queued by schedule_send, waiting for its cycle.
  struct ScheduledSend {
    Cycle at = 0;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::int32_t length = 0;
  };

  void dispatch_events();
  void inject_faults();
  /// Apply due dynamic fault events and advance the distance-vector plane
  /// (first thing in the sequential prologue).
  void step_faults();
  MessageId dispatch_send(NodeId src, NodeId dest, std::int32_t length,
                          Cycle at);

  // Shard-safety tags (docs/ENGINE.md, enforced by tools/shardlint.py):
  // [shard: seq] mutated only by the sequential phases, [shard: owned]
  // per-node / owner-partitioned and writable from step_shard for owned
  // nodes, [shard: ro] immutable after construction.
  sim::SimConfig config_;     // [shard: ro] [snap: skip] is the config section
  topo::KAryNCube topology_;  // [shard: ro] [snap: skip] derived from config
  // [snap: skip] stateless strategy object, derived from config.
  std::unique_ptr<route::RoutingAlgorithm> routing_;  // [shard: ro]
  /// Gate claims are owner-partitioned: router n only claims channels
  /// leaving n, which belong to n's shard. [shard: owned]
  /// [snap: skip] claims are mid-step scratch, all released at the
  /// quiesce seam where snapshots are taken (docs/ENGINE.md).
  wh::ExclusiveLinkGate gate_;
  CircuitTable circuits_;                  // [shard: seq]
  std::unique_ptr<ControlPlane> control_;  // [shard: seq]
  std::unique_ptr<DataPlane> data_;        // [shard: seq]
  /// Dynamic fault schedule + distance-vector reachability; null without a
  /// schedule. Advanced only in step_begin. [shard: seq]
  std::unique_ptr<fault::FaultPlane> fault_;
  wh::Fabric fabric_;                      // [shard: owned]
  /// [snap: skip] observer wiring (metrics/trace sinks), not sim state.
  Instrumentation instrumentation_;        // [shard: seq]
  /// Reassembly counters are per message, and a message ejects at exactly
  /// one node, hence one shard. [shard: owned]
  MessageLog log_;
  std::vector<std::unique_ptr<NodeInterface>> interfaces_;  // [shard: owned]
  sim::Rng rng_;  // [shard: seq]
  /// For the sequential step(). [shard: seq] [snap: skip] mid-step
  /// scratch, dead at the quiesce seam.
  ShardContext scratch_ctx_;
  /// Pending scheduled sends, non-decreasing `at`; a head index makes the
  /// per-cycle drain O(due sends). [shard: seq]
  std::vector<ScheduledSend> sends_;
  std::size_t sends_head_ = 0;  // [shard: seq]
  Cycle now_ = 0;                     // [shard: seq]
  std::int64_t faulty_channels_ = 0;  // [shard: seq]
  /// Running count of delivered messages (wormhole reassembly counts are
  /// merged from shard contexts at commit; circuit deliveries count at
  /// event dispatch), so quiescence checks are O(1). [shard: seq]
  std::uint64_t delivered_msgs_ = 0;
};

}  // namespace wavesim::core
