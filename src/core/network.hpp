// The wave-switching network: an array of wave routers (paper Fig. 2).
//
// Each router is the composition of an S0 wormhole router (wh::Fabric), a
// slice of the PCS control plane (k control VCs sharing S0 link bandwidth)
// and k wave-pipelined circuit switches (the data plane). This class wires
// the planes together, injects static faults, owns the per-node interfaces
// and advances everything in the per-cycle order that gives control
// traffic link priority.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/control_plane.hpp"
#include "core/data_plane.hpp"
#include "core/instrumentation.hpp"
#include "core/message.hpp"
#include "core/node_interface.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "wormhole/fabric.hpp"

namespace wavesim::core {

/// Everything one shard accumulates while stepping its node range: the
/// fabric outbox plus instrumentation events staged for the ordered flush.
struct ShardContext {
  wh::ShardIo io;
  EventBuffer events;

  void clear() noexcept {
    io.clear();
    events.clear();
  }
};

class Network {
 public:
  explicit Network(const sim::SimConfig& config);

  const sim::SimConfig& config() const noexcept { return config_; }
  const topo::KAryNCube& topology() const noexcept { return topology_; }
  Cycle now() const noexcept { return now_; }

  /// Offer a message; protocol handling starts this cycle.
  MessageId send(NodeId src, NodeId dest, std::int32_t length);

  /// CARP primitives (valid on any circuit-capable configuration).
  /// `max_message_flits` sizes the circuit's end-point buffers (0 = use
  /// the speculative CLRP size).
  bool establish_circuit(NodeId src, NodeId dest,
                         std::int32_t max_message_flits = 0);
  void release_circuit(NodeId src, NodeId dest);

  void step();
  void run(Cycle cycles);

  // -- sharded stepping (engine seam) --------------------------------------
  // step() is exactly step_begin + step_shard over the full node range +
  // step_commit. A parallel engine runs step_begin, then step_shard
  // concurrently on disjoint contiguous node ranges (one ShardContext
  // each), then step_commit with the contexts in ascending node order.
  // Because every cross-node effect is buffered in the context and merged
  // in node order, the result is bit-identical to the sequential step for
  // any shard/thread count (see docs/ENGINE.md).

  /// Sequential prologue: gate reset, control/data planes, event dispatch,
  /// PCS retry pumping, delay-line drain. All sequential id allocation
  /// (probes, circuits) happens here.
  void step_begin();
  /// Parallel-safe on disjoint node ranges: wormhole injection pumping,
  /// router pipelines and message reassembly for nodes [begin, end).
  void step_shard(NodeId begin, NodeId end, ShardContext& ctx);
  /// Sequential epilogue: merge shard outboxes in the given order (must be
  /// ascending node ranges), replay staged events, advance the clock.
  void step_commit(std::span<ShardContext* const> contexts);

  // -- component access ----------------------------------------------------
  const MessageLog& messages() const noexcept { return log_; }
  wh::Fabric& fabric() noexcept { return fabric_; }
  const wh::Fabric& fabric() const noexcept { return fabric_; }
  ControlPlane* control_plane() noexcept { return control_.get(); }
  const ControlPlane* control_plane() const noexcept { return control_.get(); }
  DataPlane* data_plane() noexcept { return data_.get(); }
  const DataPlane* data_plane() const noexcept { return data_.get(); }
  const CircuitTable& circuits() const noexcept { return circuits_; }
  NodeInterface& interface(NodeId node) { return *interfaces_.at(node); }
  const NodeInterface& interface(NodeId node) const {
    return *interfaces_.at(node);
  }

  /// Every offered message delivered and all planes drained.
  bool quiescent() const;
  std::uint64_t messages_delivered() const;

  /// Number of circuit data channels statically marked faulty.
  std::int64_t faulty_channels() const noexcept { return faulty_channels_; }

  /// Install an event sink (timelines, debugging, trace capture).
  void set_event_sink(Instrumentation::Sink sink) {
    instrumentation_.set_sink(std::move(sink));
  }

 private:
  void dispatch_events();
  void inject_faults();

  // Shard-safety tags (docs/ENGINE.md, enforced by tools/shardlint.py):
  // [shard: seq] mutated only by the sequential phases, [shard: owned]
  // per-node / owner-partitioned and writable from step_shard for owned
  // nodes, [shard: ro] immutable after construction.
  sim::SimConfig config_;                             // [shard: ro]
  topo::KAryNCube topology_;                          // [shard: ro]
  std::unique_ptr<route::RoutingAlgorithm> routing_;  // [shard: ro]
  /// Gate claims are owner-partitioned: router n only claims channels
  /// leaving n, which belong to n's shard. [shard: owned]
  wh::ExclusiveLinkGate gate_;
  CircuitTable circuits_;                  // [shard: seq]
  std::unique_ptr<ControlPlane> control_;  // [shard: seq]
  std::unique_ptr<DataPlane> data_;        // [shard: seq]
  wh::Fabric fabric_;                      // [shard: owned]
  Instrumentation instrumentation_;        // [shard: seq]
  /// Reassembly counters are per message, and a message ejects at exactly
  /// one node, hence one shard. [shard: owned]
  MessageLog log_;
  std::vector<std::unique_ptr<NodeInterface>> interfaces_;  // [shard: owned]
  sim::Rng rng_;  // [shard: seq]
  ShardContext scratch_ctx_;  ///< for the sequential step() [shard: seq]
  Cycle now_ = 0;                     // [shard: seq]
  std::int64_t faulty_channels_ = 0;  // [shard: seq]
};

}  // namespace wavesim::core
