// The wave-switching network: an array of wave routers (paper Fig. 2).
//
// Each router is the composition of an S0 wormhole router (wh::Fabric), a
// slice of the PCS control plane (k control VCs sharing S0 link bandwidth)
// and k wave-pipelined circuit switches (the data plane). This class wires
// the planes together, injects static faults, owns the per-node interfaces
// and advances everything in the per-cycle order that gives control
// traffic link priority.
#pragma once

#include <memory>
#include <vector>

#include "core/control_plane.hpp"
#include "core/data_plane.hpp"
#include "core/instrumentation.hpp"
#include "core/message.hpp"
#include "core/node_interface.hpp"
#include "routing/routing.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "wormhole/fabric.hpp"

namespace wavesim::core {

class Network {
 public:
  explicit Network(const sim::SimConfig& config);

  const sim::SimConfig& config() const noexcept { return config_; }
  const topo::KAryNCube& topology() const noexcept { return topology_; }
  Cycle now() const noexcept { return now_; }

  /// Offer a message; protocol handling starts this cycle.
  MessageId send(NodeId src, NodeId dest, std::int32_t length);

  /// CARP primitives (valid on any circuit-capable configuration).
  /// `max_message_flits` sizes the circuit's end-point buffers (0 = use
  /// the speculative CLRP size).
  bool establish_circuit(NodeId src, NodeId dest,
                         std::int32_t max_message_flits = 0);
  void release_circuit(NodeId src, NodeId dest);

  void step();
  void run(Cycle cycles);

  // -- component access ----------------------------------------------------
  const MessageLog& messages() const noexcept { return log_; }
  wh::Fabric& fabric() noexcept { return fabric_; }
  const wh::Fabric& fabric() const noexcept { return fabric_; }
  ControlPlane* control_plane() noexcept { return control_.get(); }
  const ControlPlane* control_plane() const noexcept { return control_.get(); }
  DataPlane* data_plane() noexcept { return data_.get(); }
  const DataPlane* data_plane() const noexcept { return data_.get(); }
  const CircuitTable& circuits() const noexcept { return circuits_; }
  NodeInterface& interface(NodeId node) { return *interfaces_.at(node); }
  const NodeInterface& interface(NodeId node) const {
    return *interfaces_.at(node);
  }

  /// Every offered message delivered and all planes drained.
  bool quiescent() const;
  std::uint64_t messages_delivered() const;

  /// Number of circuit data channels statically marked faulty.
  std::int64_t faulty_channels() const noexcept { return faulty_channels_; }

  /// Install an event sink (timelines, debugging, trace capture).
  void set_event_sink(Instrumentation::Sink sink) {
    instrumentation_.set_sink(std::move(sink));
  }

 private:
  void dispatch_events();
  void inject_faults();

  sim::SimConfig config_;
  topo::KAryNCube topology_;
  std::unique_ptr<route::RoutingAlgorithm> routing_;
  wh::ExclusiveLinkGate gate_;
  CircuitTable circuits_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<DataPlane> data_;
  wh::Fabric fabric_;
  Instrumentation instrumentation_;
  MessageLog log_;
  std::vector<std::unique_ptr<NodeInterface>> interfaces_;
  sim::Rng rng_;
  Cycle now_ = 0;
  std::int64_t faulty_channels_ = 0;
};

}  // namespace wavesim::core
