// Seam between the Simulation facade and the machinery that advances one
// cycle. The default (no engine installed) is Network::step(); an engine
// may instead drive the step_begin / step_shard / step_commit phases —
// e.g. src/engine's sharded parallel engine. Every engine must advance
// exactly one cycle per step() call and leave the network in a state
// bit-identical to the sequential stepper. run() advances a whole span
// and is the seam through which a lookahead engine may commit several
// cycles per synchronization barrier (still bit-identical).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace wavesim::core {

class Network;

class StepEngine {
 public:
  virtual ~StepEngine() = default;

  /// Advance `net` by exactly one cycle.
  virtual void step(Network& net) = 0;

  /// Advance `net` by exactly `cycles` cycles. The default is a step()
  /// loop; engines with lookahead override this to batch barriers.
  ///
  /// Quiesce-for-snapshot seam (src/snap): whenever step() or run()
  /// returns, the engine must hold NO carryover state about the network
  /// -- every window fully committed, every shard context drained -- so
  /// that Network::snap() between calls captures the complete simulation
  /// state and a restored network may continue under ANY engine (or shard
  /// count, or lookahead) with bit-identical results. Engines that batch
  /// cycles internally must never return mid-window.
  virtual void run(Network& net, Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step(net);
  }

  /// Barrier bookkeeping of the most recent run() calls: how many
  /// synchronizations happened and how many cycles they committed in
  /// total. Engines without lookahead report zeros.
  struct WindowStats {
    std::uint64_t windows = 0;          ///< barrier synchronizations
    std::uint64_t committed_cycles = 0; ///< cycles those barriers covered
  };
  virtual WindowStats window_stats() const { return {}; }

  /// Stable identifier ("seq", "par") for logs and JSON stamps.
  virtual const char* name() const noexcept = 0;
};

}  // namespace wavesim::core
