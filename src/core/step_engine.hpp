// Seam between the Simulation facade and the machinery that advances one
// cycle. The default (no engine installed) is Network::step(); an engine
// may instead drive the step_begin / step_shard / step_commit phases —
// e.g. src/engine's sharded parallel engine. Every engine must advance
// exactly one cycle per step() call and leave the network in a state
// bit-identical to the sequential stepper.
#pragma once

namespace wavesim::core {

class Network;

class StepEngine {
 public:
  virtual ~StepEngine() = default;

  /// Advance `net` by exactly one cycle.
  virtual void step(Network& net) = 0;

  /// Stable identifier ("seq", "par") for logs and JSON stamps.
  virtual const char* name() const noexcept = 0;
};

}  // namespace wavesim::core
