// Circuit lifecycle bookkeeping.
//
// Physically a circuit is nothing but the reserved (control, data) channel
// pairs in the distributed PCS registers; the CircuitTable centralizes the
// simulator's view of each circuit for statistics, teardown routing and
// the source-side fields that live in the Circuit Cache.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

enum class CircuitState : std::uint8_t {
  kProbing,      ///< a probe is searching / reserving the path
  kEstablished,  ///< setup ack returned to the source; usable
  kTearingDown,  ///< teardown flit in flight
  kDead,         ///< fully released (kept for statistics)
};

const char* to_string(CircuitState state) noexcept;

struct CircuitRecord {
  CircuitId id = kInvalidCircuit;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::int32_t switch_index = 0;   ///< wave switch S_{i+1} the circuit uses
  CircuitState state = CircuitState::kProbing;
  /// Output port taken at each hop, source first (known once established).
  std::vector<PortId> path;
  bool in_use = false;             ///< a message is in transit (Fig. 5)
  bool pending_release = false;    ///< release requested; tear down when idle
  Cycle established_at = 0;
  std::int64_t messages_carried = 0;
  /// Delivery-buffer flits allocated at both ends when the circuit was
  /// established (paper section 2); grown on re-allocation.
  std::int32_t buffer_flits = 0;

  std::int32_t hops() const noexcept {
    return static_cast<std::int32_t>(path.size());
  }
};

/// Field-by-field record serialization (shared by the table and tests).
void snap_circuit_record(snap::Archive& ar, CircuitRecord& rec);

class CircuitTable {
 public:
  CircuitId create(NodeId src, NodeId dest, std::int32_t switch_index);
  CircuitRecord& at(CircuitId id);
  const CircuitRecord& at(CircuitId id) const;
  bool contains(CircuitId id) const;
  /// Transition to kDead and drop from the active index.
  void retire(CircuitId id);

  std::int64_t created_total() const noexcept { return next_id_; }
  std::size_t active() const noexcept { return table_.size(); }
  /// Ids of all live circuits, ascending (stable iteration for checkers).
  std::vector<CircuitId> active_ids() const;

  /// Serialize the table in ascending-id order (snapshot/restore; the
  /// unordered_map's bucket order must never leak into snapshot bytes).
  void snap(snap::Archive& ar);

 private:
  std::unordered_map<CircuitId, CircuitRecord> table_;
  CircuitId next_id_ = 0;
};

}  // namespace wavesim::core
