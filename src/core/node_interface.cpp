#include "core/node_interface.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::core {

namespace {
/// PCS-only mode: cycles between setup retries after a failure.
constexpr Cycle kPcsRetryBackoff = 64;
}  // namespace

const char* to_string(MessageMode mode) noexcept {
  switch (mode) {
    case MessageMode::kUnset: return "unset";
    case MessageMode::kCircuitHit: return "circuit-hit";
    case MessageMode::kCircuitAfterSetup: return "circuit-after-setup";
    case MessageMode::kWormholeFallback: return "wormhole-fallback";
    case MessageMode::kWormholePolicy: return "wormhole-policy";
  }
  return "?";
}

NodeInterface::NodeInterface(NodeId node, const sim::SimConfig& config,
                             const topo::KAryNCube& topology, MessageLog& log,
                             CircuitTable& circuits, wh::Fabric& fabric,
                             ControlPlane* control, DataPlane* data,
                             const fault::FaultPlane* fault,
                             const Instrumentation& instrumentation,
                             sim::Rng rng)
    : node_(node), config_(config), topology_(topology), log_(log),
      circuits_(circuits), fabric_(fabric), control_(control), data_(data),
      fault_(fault), instr_(instrumentation),
      cache_(config.protocol.circuit_cache_entries,
             config.protocol.replacement, rng),
      streams_(config.router.wormhole_vcs) {
  if ((control_ == nullptr) != (data_ == nullptr)) {
    throw std::invalid_argument(
        "NodeInterface: control and data planes must both exist or neither");
  }
}

std::int32_t NodeInterface::initial_switch() const {
  std::int32_t sum = 0;
  for (auto c : topology_.coord_of(node_)) sum += c;
  return sum % control_->num_switches();
}

void NodeInterface::send_wormhole(MessageId id, MessageMode mode, Cycle now) {
  MessageRecord& rec = log_.at(id);
  rec.mode = mode;
  if (mode == MessageMode::kWormholeFallback) {
    ++stats_.fallback_messages;
    instr_.emit(now, EventKind::kFallbackWormhole, node_, id);
  } else {
    ++stats_.wormhole_messages;
  }
  // Packetization: segment at max_packet_flits (0 = whole message).
  const std::int32_t max = config_.protocol.max_packet_flits;
  const std::int32_t chunk = max > 0 ? max : rec.length;
  for (std::int32_t start = 0; start < rec.length; start += chunk) {
    Packet pkt;
    pkt.msg = id;
    pkt.dest = rec.dest;
    pkt.start = start;
    pkt.count = std::min(chunk, rec.length - start);
    pkt.msg_length = rec.length;
    pkt.created = rec.created;
    wormhole_pending_.push_back(pkt);
    ++stats_.packets_sent;
  }
  // Flag pending injections so the step sweep pumps this node.
  fabric_.set_ni_work(node_, true);
}

void NodeInterface::submit(MessageId id, Cycle now) {
  MessageRecord& rec = log_.at(id);
  if (rec.src != node_) {
    throw std::invalid_argument("NodeInterface::submit: wrong source node");
  }
  const auto protocol = config_.protocol.protocol;
  const bool circuit_eligible =
      circuits_enabled() && protocol != sim::ProtocolKind::kWormholeOnly &&
      rec.length >= config_.protocol.min_circuit_message_flits;
  if (!circuit_eligible) {
    send_wormhole(id, MessageMode::kWormholePolicy, now);
    return;
  }

  DestState& ds = dest_state(rec.dest);
  CacheEntry* entry = cache_.find(rec.dest);

  // A setup attempt is running: park behind it.
  if (ds.setup.has_value()) {
    rec.mode = MessageMode::kCircuitAfterSetup;
    ds.queue.push_back(id);
    return;
  }

  if (entry != nullptr) {
    if (ds.release_urgent || ds.release_when_drained) {
      // The circuit is on its way out; don't prolong its life.
      send_wormhole(id, MessageMode::kWormholePolicy, now);
      return;
    }
    ++cache_.hits;
    rec.mode = MessageMode::kCircuitHit;
    ds.queue.push_back(id);
    try_start_transfer(rec.dest, now);
    return;
  }

  ++cache_.misses;
  if (fault_ != nullptr && !fault_->reachable(node_, rec.dest) &&
      !config_.protocol.pcs_only) {
    // The distance-vector tables know no live circuit path: don't burn a
    // probe, ride the (always healthy) wormhole plane while DV converges.
    ++stats_.unreachable_fallbacks;
    send_wormhole(id, MessageMode::kWormholeFallback, now);
    return;
  }
  if (protocol == sim::ProtocolKind::kClrp) {
    if (start_setup(rec.dest, SetupSequencer::Mode::kClrp, now)) {
      rec.mode = MessageMode::kCircuitAfterSetup;
      ds.queue.push_back(id);
    } else if (config_.protocol.pcs_only) {
      // No wormhole plane to fall back on: wait for a cache slot.
      rec.mode = MessageMode::kCircuitAfterSetup;
      ds.queue.push_back(id);
      ds.needs_retry = true;
      ds.retry_at = now + kPcsRetryBackoff;
    } else {
      // Every cache entry is probing or carrying a message: wormhole.
      send_wormhole(id, MessageMode::kWormholeFallback, now);
    }
    return;
  }
  // CARP: circuits appear only on explicit request.
  send_wormhole(id, MessageMode::kWormholePolicy, now);
}

bool NodeInterface::start_setup(NodeId dest, SetupSequencer::Mode mode,
                                Cycle now) {
  std::optional<CacheEntry> evicted;
  CacheEntry* entry = cache_.allocate(dest, now, &evicted);
  if (entry == nullptr) return false;
  if (evicted.has_value()) {
    // The victim is established and idle (pick_victim guarantees it);
    // tear its circuit down and recycle anything parked behind it.
    DestState& vds = dest_state(evicted->dest);
    std::deque<MessageId> orphans = std::move(vds.queue);
    vds = DestState{};
    instr_.emit(now, EventKind::kEvicted, node_, kInvalidMessage,
                evicted->circuit);
    control_->start_teardown(evicted->circuit);
    requeue(std::move(orphans), now);
  }
  const std::int32_t init = initial_switch();
  if (mode == SetupSequencer::Mode::kClrp) {
    dest_state(dest).carp_buffer_flits = 0;  // CLRP sizes speculatively
  }
  const CircuitId circuit = circuits_.create(node_, dest, init);
  entry->circuit = circuit;
  entry->probing = true;
  entry->initial_switch = init;
  entry->switch_index = init;
  DestState& ds = dest_state(dest);
  ds.setup.emplace(mode, config_.protocol.clrp_variant,
                   control_->num_switches(), init);
  ++stats_.setups_started;
  launch_attempt(dest, ds, now);
  return true;
}

void NodeInterface::launch_attempt(NodeId dest, DestState& ds, Cycle now) {
  CacheEntry* entry = cache_.find(dest);
  if (entry == nullptr || !ds.setup.has_value()) {
    throw std::logic_error("launch_attempt without entry/sequencer");
  }
  const SetupAttempt attempt = ds.setup->current();
  CircuitRecord& rec = circuits_.at(entry->circuit);
  rec.switch_index = attempt.switch_index;
  entry->switch_index = attempt.switch_index;
  instr_.emit(now, EventKind::kProbeLaunched, node_, kInvalidMessage,
              entry->circuit);
  control_->launch_probe(entry->circuit, attempt.force);
}

void NodeInterface::abandon_setup(NodeId dest, DestState& ds, Cycle now) {
  CacheEntry* entry = cache_.find(dest);
  instr_.emit(now, EventKind::kSetupAbandoned, node_, kInvalidMessage,
              entry != nullptr ? entry->circuit : kInvalidCircuit);
  if (entry != nullptr) {
    const CircuitId circuit = entry->circuit;
    cache_.invalidate(*entry);
    circuits_.retire(circuit);
  }
  ds.setup.reset();
  ds.release_urgent = false;
  ds.release_when_drained = false;
  if (config_.protocol.pcs_only) {
    // Messages keep waiting; the setup retries after a backoff (paper
    // section 2's k=1/w=0 router has no wormhole plane to fall back on).
    ds.needs_retry = true;
    ds.retry_at = now + kPcsRetryBackoff;
    return;
  }
  std::deque<MessageId> orphans = std::move(ds.queue);
  for (MessageId id : orphans) {
    send_wormhole(id, MessageMode::kWormholeFallback, now);
  }
}

void NodeInterface::try_start_transfer(NodeId dest, Cycle now) {
  DestState& ds = dest_state(dest);
  if (ds.queue.empty() || ds.release_urgent) return;
  CacheEntry* entry = cache_.find(dest);
  if (entry == nullptr || !entry->ack_returned || entry->in_use) return;
  const MessageId msg = ds.queue.front();
  ds.queue.pop_front();
  const std::int32_t length = log_.at(msg).length;
  CircuitRecord& rec = circuits_.at(entry->circuit);
  // Software messaging overhead: the first message on a circuit allocates
  // the end-point buffers; later ones reuse them (paper sections 1-2).
  Cycle delay = static_cast<Cycle>(
      rec.messages_carried == 0
          ? config_.software.circuit_first_send_overhead
          : config_.software.circuit_reuse_send_overhead);
  if (length > rec.buffer_flits) {
    // "Buffers may have to be re-allocated for longer messages."
    delay += static_cast<Cycle>(config_.software.buffer_realloc_penalty);
    rec.buffer_flits = length;
    ++stats_.buffer_reallocs;
  }
  data_->start_transfer(msg, entry->circuit, length, now, delay);
  entry->in_use = true;
  cache_.touch(*entry, now);
  instr_.emit(now, EventKind::kTransferStarted, node_, msg, entry->circuit);
  ++stats_.circuit_messages;
}

void NodeInterface::teardown_now(NodeId dest, CacheEntry& entry, Cycle now) {
  (void)dest;
  const CircuitId circuit = entry.circuit;
  instr_.emit(now, EventKind::kTeardownStarted, node_, kInvalidMessage,
              circuit);
  cache_.invalidate(entry);
  control_->start_teardown(circuit);
}

void NodeInterface::requeue(std::deque<MessageId> msgs, Cycle now) {
  for (MessageId id : msgs) submit(id, now);
}

bool NodeInterface::establish_circuit(NodeId dest, Cycle now,
                                      std::int32_t max_message_flits) {
  if (!circuits_enabled() || dest == node_) return false;
  if (fault_ != nullptr && !fault_->reachable(node_, dest)) {
    ++stats_.unreachable_fallbacks;
    return false;
  }
  DestState& ds = dest_state(dest);
  if (ds.setup.has_value() || cache_.find(dest) != nullptr) return true;
  ds.carp_buffer_flits = max_message_flits;
  return start_setup(dest, SetupSequencer::Mode::kCarp, now);
}

void NodeInterface::release_circuit(NodeId dest, Cycle now) {
  if (!circuits_enabled()) return;
  DestState& ds = dest_state(dest);
  CacheEntry* entry = cache_.find(dest);
  if (entry == nullptr && !ds.setup.has_value()) return;  // nothing to do
  ds.release_when_drained = true;
  if (entry != nullptr && entry->ack_returned && !entry->in_use &&
      ds.queue.empty()) {
    ds.release_when_drained = false;
    teardown_now(dest, *entry, now);
  }
}

void NodeInterface::on_probe_result(const ProbeResult& result, Cycle now) {
  const CircuitRecord& rec = circuits_.at(result.circuit);
  const NodeId dest = rec.dest;
  DestState& ds = dest_state(dest);
  CacheEntry* entry = cache_.find(dest);
  if (entry == nullptr || entry->circuit != result.circuit ||
      !ds.setup.has_value()) {
    throw std::logic_error("probe result for unknown setup");
  }
  if (result.success) {
    instr_.emit(now, EventKind::kCircuitEstablished, node_, kInvalidMessage,
                result.circuit);
    entry->ack_returned = true;
    entry->probing = false;
    entry->channel = rec.path.empty() ? kInvalidPort : rec.path.front();
    // Allocate the end-point message buffers (paper section 2): CARP sizes
    // them from the declared message set, CLRP speculatively.
    circuits_.at(result.circuit).buffer_flits =
        ds.carp_buffer_flits > 0 ? ds.carp_buffer_flits
                                 : config_.software.clrp_initial_buffer_flits;
    ds.setup.reset();
    ++stats_.setups_succeeded;
    if (ds.release_when_drained && ds.queue.empty()) {
      // CARP released the circuit before setup even finished.
      ds.release_when_drained = false;
      teardown_now(dest, *entry, now);
      return;
    }
    try_start_transfer(dest, now);
    return;
  }
  if (ds.setup->advance()) {
    launch_attempt(dest, ds, now);
  } else {
    ++stats_.setups_failed;
    abandon_setup(dest, ds, now);
  }
}

void NodeInterface::on_release_demand(const ReleaseDemand& demand, Cycle now) {
  if (!circuits_.contains(demand.circuit)) {
    ++stats_.release_demands_discarded;
    return;
  }
  const CircuitRecord& rec = circuits_.at(demand.circuit);
  if (rec.state != CircuitState::kEstablished) {
    ++stats_.release_demands_discarded;  // duplicate / racing teardown
    return;
  }
  const NodeId dest = rec.dest;
  DestState& ds = dest_state(dest);
  CacheEntry* entry = cache_.find(dest);
  if (entry == nullptr || entry->circuit != demand.circuit) {
    ++stats_.release_demands_discarded;
    return;
  }
  ++stats_.release_demands_honored;
  instr_.emit(now, EventKind::kReleaseDemanded, node_, kInvalidMessage,
              demand.circuit);
  // entry->in_use can outlive rec.in_use by part of a cycle: the data plane
  // clears rec.in_use when the last ack arrives, but the TransferDone event
  // dispatches after release demands. Either flag means "message in
  // transit" here.
  if (rec.in_use || entry->in_use) {
    // Let the in-flight message finish (paper: "once the message currently
    // using that circuit has been sent"); on_transfer_done completes it.
    ds.release_urgent = true;
    return;
  }
  std::deque<MessageId> orphans = std::move(ds.queue);
  ds.release_urgent = false;
  ds.release_when_drained = false;
  instr_.emit(now, EventKind::kForceTeardown, node_, kInvalidMessage,
              demand.circuit);
  teardown_now(dest, *entry, now);
  requeue(std::move(orphans), now);
}

void NodeInterface::on_transfer_done(const TransferDone& done, Cycle now) {
  log_.mark_delivered(done.msg, done.delivered_at);
  instr_.emit(done.delivered_at, EventKind::kDelivered, done.dest, done.msg,
              done.circuit);
  instr_.emit(now, EventKind::kTransferCompleted, node_, done.msg,
              done.circuit);
  DestState& ds = dest_state(done.dest);
  CacheEntry* entry = cache_.find(done.dest);
  if (entry == nullptr || entry->circuit != done.circuit) {
    throw std::logic_error("transfer done for unknown circuit entry");
  }
  entry->in_use = false;
  if (ds.release_urgent) {
    ds.release_urgent = false;
    std::deque<MessageId> orphans = std::move(ds.queue);
    ds.release_when_drained = false;
    instr_.emit(now, EventKind::kForceTeardown, node_, kInvalidMessage,
                done.circuit);
    teardown_now(done.dest, *entry, now);
    requeue(std::move(orphans), now);
    return;
  }
  if (ds.release_when_drained && ds.queue.empty()) {
    ds.release_when_drained = false;
    teardown_now(done.dest, *entry, now);
    return;
  }
  try_start_transfer(done.dest, now);
}

void NodeInterface::on_circuit_killed(CircuitId circuit, NodeId dest,
                                      MessageId aborted, Cycle now) {
  instr_.emit(now, EventKind::kCircuitInvalidated, node_, aborted, circuit);
  ++stats_.circuits_invalidated;
  DestState& ds = dest_state(dest);
  CacheEntry* entry = cache_.find(dest);
  if (entry != nullptr && entry->circuit == circuit) {
    // The kill aborted any in-flight transfer, so the TransferDone that
    // would normally unpin the entry will never arrive: release the pin
    // here or invalidate() would (rightly) refuse to drop a live entry.
    entry->in_use = false;
    cache_.invalidate(*entry);
  }
  // Pending releases died with the circuit; don't carry them into the next
  // setup toward this destination.
  ds.release_urgent = false;
  ds.release_when_drained = false;
  circuits_.retire(circuit);
  std::deque<MessageId> orphans = std::move(ds.queue);
  if (aborted != kInvalidMessage) {
    // The in-flight message lost its circuit mid-transfer: resend it whole
    // over S0 (circuit flits never touch wormhole reassembly counters, so
    // the delivery accounting stays exact).
    send_wormhole(aborted, MessageMode::kWormholeFallback, now);
  }
  // Queued messages re-enter submit(): they re-probe over surviving links
  // or fall back to wormhole when DV says the destination is circuit-dark.
  requeue(std::move(orphans), now);
}

void NodeInterface::pump_retries(Cycle now) {
  // PCS-only mode: retry failed / deferred setups after their backoff.
  if (!config_.protocol.pcs_only) return;
  for (auto& [dest, ds] : dests_) {
    if (!ds.needs_retry || now < ds.retry_at) continue;
    if (ds.setup.has_value() || cache_.find(dest) != nullptr) {
      ds.needs_retry = false;
      continue;
    }
    if (ds.queue.empty()) {
      ds.needs_retry = false;
      continue;
    }
    ++stats_.setup_retries;
    if (start_setup(dest, SetupSequencer::Mode::kClrp, now)) {
      ds.needs_retry = false;
    } else {
      ds.retry_at = now + kPcsRetryBackoff;
    }
  }
}

void NodeInterface::pump_streams(Cycle now, wh::ShardIo& io) {
  // Messages clear the software send path (buffer allocation, copying,
  // packetization -- paper section 1) before their flits may inject.
  const auto overhead =
      static_cast<Cycle>(config_.software.wormhole_send_overhead);
  auto try_assign = [&](Stream& s) {
    if (s.active() || wormhole_pending_.empty()) return;
    const Packet& pkt = wormhole_pending_.front();
    if (pkt.created + overhead > now) return;  // still in the send path
    s = Stream{pkt, 0};
    wormhole_pending_.pop_front();
  };
  for (VcId v = 0; v < static_cast<VcId>(streams_.size()); ++v) {
    Stream& s = streams_[v];
    try_assign(s);
    while (s.active() && fabric_.can_inject(node_, v)) {
      const std::int32_t seq = s.pkt.start + s.sent;
      fabric_.inject(node_, v,
                     wh::make_packet_flit(s.pkt.msg, node_, s.pkt.dest, seq,
                                          s.pkt.msg_length, s.sent == 0,
                                          s.sent == s.pkt.count - 1,
                                          s.pkt.created),
                     io);
      if (++s.sent == s.pkt.count) {
        s = Stream{};
        try_assign(s);
      }
    }
  }
  bool live = !wormhole_pending_.empty();
  for (const Stream& s : streams_) live = live || s.active();
  fabric_.set_ni_work(node_, live);
}

void NodeInterface::snap(snap::Archive& ar) {
  cache_.snap(ar);
  const auto snap_dest_state = [](snap::Archive& a, DestState& ds) {
    a.deq(ds.queue, [](snap::Archive& b, MessageId& id) { b.pod(id); });
    bool has_setup = ds.setup.has_value();
    a.pod(has_setup);
    if (has_setup) {
      if (a.reading() && !ds.setup.has_value()) {
        // Placeholder construction; snap() overwrites every field.
        ds.setup.emplace(SetupSequencer::Mode::kClrp, sim::ClrpVariant{},
                         /*num_switches=*/1, /*initial_switch=*/0);
      }
      ds.setup->snap(a);
    } else if (a.reading()) {
      ds.setup.reset();
    }
    a.pod(ds.release_urgent);
    a.pod(ds.release_when_drained);
    a.pod(ds.carp_buffer_flits);
    a.pod(ds.needs_retry);
    a.pod(ds.retry_at);
  };
  // std::map iterates in key order: deterministic bytes by construction.
  if (ar.writing()) {
    std::uint64_t n = dests_.size();
    ar.pod(n);
    for (auto& [dest, ds] : dests_) {
      NodeId key = dest;
      ar.pod(key);
      snap_dest_state(ar, ds);
    }
  } else {
    dests_.clear();
    std::uint64_t n = 0;
    ar.pod(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      NodeId key = kInvalidNode;
      ar.pod(key);
      snap_dest_state(ar, dests_[key]);
    }
  }
  const auto snap_packet = [](snap::Archive& a, Packet& p) {
    a.pod(p.msg);
    a.pod(p.dest);
    a.pod(p.start);
    a.pod(p.count);
    a.pod(p.msg_length);
    a.pod(p.created);
  };
  ar.deq(wormhole_pending_, snap_packet);
  ar.vec(streams_, [&](snap::Archive& a, Stream& s) {
    snap_packet(a, s.pkt);
    a.pod(s.sent);
  });
  ar.pod(stats_.circuit_messages);
  ar.pod(stats_.wormhole_messages);
  ar.pod(stats_.fallback_messages);
  ar.pod(stats_.setups_started);
  ar.pod(stats_.setups_succeeded);
  ar.pod(stats_.setups_failed);
  ar.pod(stats_.release_demands_honored);
  ar.pod(stats_.release_demands_discarded);
  ar.pod(stats_.buffer_reallocs);
  ar.pod(stats_.packets_sent);
  ar.pod(stats_.setup_retries);
  ar.pod(stats_.circuits_invalidated);
  ar.pod(stats_.unreachable_fallbacks);
}

}  // namespace wavesim::core
