// Optional event instrumentation: a caller-supplied sink receives one
// typed event per protocol milestone, enabling timelines, debugging and
// trace capture without any cost when unused.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/types.hpp"

namespace wavesim::core {

enum class EventKind : std::uint8_t {
  kSubmitted,           ///< message offered to its source NI
  kProbeLaunched,       ///< one MB-m attempt started
  kCircuitEstablished,  ///< setup ack reached the source
  kSetupAbandoned,      ///< every attempt failed; fell back / will retry
  kTransferStarted,     ///< message began moving on a circuit
  kTransferCompleted,   ///< last ack reached the source (In-use cleared)
  kDelivered,           ///< last flit reached the destination
  kTeardownStarted,     ///< source began releasing a circuit
  kEvicted,             ///< cache replacement displaced a circuit
  kReleaseDemanded,     ///< a release request reached the circuit's source
  kBacktracked,         ///< a probe retreated one hop (MB-m search)
  kMisrouted,           ///< a probe advanced on a non-minimal port
  kForceTeardown,       ///< a release demand actually tore the circuit down
  kFallbackWormhole,    ///< message diverted to the S0 wormhole plane
};

/// Number of EventKind values (dense, starting at 0).
inline constexpr std::size_t kNumEventKinds = 14;

const char* to_string(EventKind kind) noexcept;

struct Event {
  Cycle at = 0;
  EventKind kind = EventKind::kSubmitted;
  NodeId node = kInvalidNode;          ///< where the event happened
  MessageId msg = kInvalidMessage;     ///< if message-scoped
  CircuitId circuit = kInvalidCircuit; ///< if circuit-scoped
};

/// Shared by the Network and its per-node interfaces. Emitting with no
/// sink installed is a no-op.
class Instrumentation {
 public:
  using Sink = std::function<void(const Event&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  bool enabled() const noexcept { return static_cast<bool>(sink_); }

  void emit(Cycle at, EventKind kind, NodeId node,
            MessageId msg = kInvalidMessage,
            CircuitId circuit = kInvalidCircuit) const {
    if (sink_) sink_(Event{at, kind, node, msg, circuit});
  }

 private:
  Sink sink_;
};

}  // namespace wavesim::core
