// Optional event instrumentation: a caller-supplied sink receives one
// typed event per protocol milestone, enabling timelines, debugging and
// trace capture without any cost when unused.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace wavesim::core {

enum class EventKind : std::uint8_t {
  kSubmitted,           ///< message offered to its source NI
  kProbeLaunched,       ///< one MB-m attempt started
  kCircuitEstablished,  ///< setup ack reached the source
  kSetupAbandoned,      ///< every attempt failed; fell back / will retry
  kTransferStarted,     ///< message began moving on a circuit
  kTransferCompleted,   ///< last ack reached the source (In-use cleared)
  kDelivered,           ///< last flit reached the destination
  kTeardownStarted,     ///< source began releasing a circuit
  kEvicted,             ///< cache replacement displaced a circuit
  kReleaseDemanded,     ///< a release request reached the circuit's source
  kBacktracked,         ///< a probe retreated one hop (MB-m search)
  kMisrouted,           ///< a probe advanced on a non-minimal port
  kForceTeardown,       ///< a release demand actually tore the circuit down
  kFallbackWormhole,    ///< message diverted to the S0 wormhole plane
  kLinkDown,            ///< a circuit-plane link failed (dynamic fault)
  kLinkUp,              ///< a failed link recovered
  kCircuitInvalidated,  ///< a cached circuit was killed by a link failure
  kRouteWithdrawn,      ///< the DV layer withdrew a route (metric -> inf)
};

/// Number of EventKind values (dense, starting at 0).
inline constexpr std::size_t kNumEventKinds = 18;

const char* to_string(EventKind kind) noexcept;

struct Event {
  Cycle at = 0;
  EventKind kind = EventKind::kSubmitted;
  NodeId node = kInvalidNode;          ///< where the event happened
  MessageId msg = kInvalidMessage;     ///< if message-scoped
  CircuitId circuit = kInvalidCircuit; ///< if circuit-scoped
  PortId port = kInvalidPort;          ///< if link-scoped (kLinkDown/Up)
};

/// Per-shard staging buffer for events discovered during the parallel
/// phase of a cycle. Each shard appends to its own buffer (no sharing, no
/// locks); the commit phase replays buffers in ascending shard order, so
/// the sink observes the exact sequence a sequential sweep over the nodes
/// would have produced.
class EventBuffer {
 public:
  void clear() noexcept { events_.clear(); }
  bool empty() const noexcept { return events_.empty(); }

  void emit(Cycle at, EventKind kind, NodeId node,
            MessageId msg = kInvalidMessage,
            CircuitId circuit = kInvalidCircuit,
            PortId port = kInvalidPort) {
    events_.push_back(Event{at, kind, node, msg, circuit, port});
  }

  const std::vector<Event>& events() const noexcept { return events_; }

 private:
  std::vector<Event> events_;
};

/// Shared by the Network and its per-node interfaces. Emitting with no
/// sink installed is a no-op.
class Instrumentation {
 public:
  using Sink = std::function<void(const Event&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  bool enabled() const noexcept { return static_cast<bool>(sink_); }

  void emit(Cycle at, EventKind kind, NodeId node,
            MessageId msg = kInvalidMessage,
            CircuitId circuit = kInvalidCircuit,
            PortId port = kInvalidPort) const {
    if (sink_) sink_(Event{at, kind, node, msg, circuit, port});
  }

  /// Replay a shard's staged events into the sink, in staging order.
  void flush(const EventBuffer& buffer) const {
    if (!sink_) return;
    for (const Event& ev : buffer.events()) sink_(ev);
  }

 private:
  Sink sink_;
};

}  // namespace wavesim::core
