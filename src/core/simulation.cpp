#include "core/simulation.hpp"

namespace wavesim::core {

Simulation::Simulation(const sim::SimConfig& config)
    : network_(std::make_unique<Network>(config)) {}

bool Simulation::run_until_delivered(Cycle max_cycles) {
  const Cycle deadline = now() + max_cycles;
  while (!network_->quiescent()) {
    if (now() >= deadline) return false;
    step();
  }
  return true;
}

sim::Histogram Simulation::latency_histogram(double lo, double hi,
                                             std::size_t bins,
                                             Cycle min_created) const {
  sim::Histogram hist(lo, hi, bins);
  for (const auto& rec : network_->messages().all()) {
    if (!rec.done || rec.created < min_created) continue;
    hist.add(rec.latency());
  }
  return hist;
}

SimulationStats Simulation::stats(Cycle min_created) const {
  SimulationStats out;
  sim::Sample latency;
  sim::OnlineStats hit_lat;
  sim::OnlineStats setup_lat;
  sim::OnlineStats fallback_lat;
  sim::OnlineStats wormhole_lat;
  Cycle span_begin = kCycleMax;
  Cycle span_end = 0;

  for (const auto& rec : network_->messages().all()) {
    if (rec.created < min_created) continue;
    ++out.messages_offered;
    if (!rec.done) continue;
    ++out.messages_delivered;
    out.flits_delivered += static_cast<std::uint64_t>(rec.length);
    latency.add(rec.latency());
    span_begin = std::min(span_begin, rec.created);
    span_end = std::max(span_end, rec.delivered);
    switch (rec.mode) {
      case MessageMode::kCircuitHit:
        ++out.circuit_hit_count;
        hit_lat.add(rec.latency());
        break;
      case MessageMode::kCircuitAfterSetup:
        ++out.circuit_setup_count;
        setup_lat.add(rec.latency());
        break;
      case MessageMode::kWormholeFallback:
        ++out.fallback_count;
        fallback_lat.add(rec.latency());
        break;
      case MessageMode::kWormholePolicy:
        ++out.wormhole_count;
        wormhole_lat.add(rec.latency());
        break;
      case MessageMode::kUnset:
        break;
    }
  }
  out.latency_mean = latency.mean();
  out.latency_p50 = latency.percentile(50);
  out.latency_p95 = latency.percentile(95);
  out.latency_p99 = latency.percentile(99);
  out.latency_max = latency.max();
  out.circuit_hit_latency = hit_lat.mean();
  out.circuit_setup_latency = setup_lat.mean();
  out.fallback_latency = fallback_lat.mean();
  out.wormhole_latency = wormhole_lat.mean();
  if (span_end > span_begin) {
    const double span = static_cast<double>(span_end - span_begin);
    out.throughput_flits_per_node_cycle =
        static_cast<double>(out.flits_delivered) / span /
        static_cast<double>(network_->topology().num_nodes());
  }

  for (NodeId n = 0; n < network_->topology().num_nodes(); ++n) {
    const auto& cache = network_->interface(n).cache();
    out.cache_hits += cache.hits;
    out.cache_misses += cache.misses;
    out.cache_evictions += cache.evictions;
    const auto& ni = network_->interface(n).stats();
    out.buffer_reallocs += ni.buffer_reallocs;
    out.circuits_invalidated += ni.circuits_invalidated;
    out.unreachable_fallbacks += ni.unreachable_fallbacks;
  }
  if (const ControlPlane* cp = network_->control_plane(); cp != nullptr) {
    const auto& s = cp->stats();
    out.probes_launched = s.probes_launched;
    out.probes_succeeded = s.probes_succeeded;
    out.probes_failed = s.probes_failed;
    out.probe_advances = s.probe_advances;
    out.probe_backtracks = s.probe_backtracks;
    out.probe_misroutes = s.probe_misroutes;
    out.release_requests = s.release_requests_sent;
    out.teardowns = s.teardowns_started;
    out.circuits_killed = s.circuits_killed;
    out.probes_killed = s.probes_killed;
  }
  if (const DataPlane* dp = network_->data_plane(); dp != nullptr) {
    out.transfers_aborted = dp->transfers_aborted();
  }
  if (const fault::FaultPlane* fp = network_->fault_plane(); fp != nullptr) {
    out.links_failed = fp->counters().links_failed;
    out.links_restored = fp->counters().links_restored;
    const auto& dc = fp->dv().counters();
    out.routes_withdrawn = dc.routes_withdrawn;
    out.route_timeouts = dc.route_timeouts;
    out.dv_updates_sent = dc.updates_sent;
    out.dv_triggered_updates = dc.triggered_updates;
    out.dv_adverts_dropped = dc.adverts_dropped;
  }
  return out;
}

}  // namespace wavesim::core
