// Network interface of one node: owns the Circuit Cache, runs the CLRP /
// CARP protocol decisions for outgoing messages, streams wormhole flits
// into S0 injection buffers, and reacts to control/data-plane events.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "core/circuit_cache.hpp"
#include "core/control_plane.hpp"
#include "core/instrumentation.hpp"
#include "core/data_plane.hpp"
#include "core/message.hpp"
#include "core/protocols.hpp"
#include "fault/plane.hpp"
#include "sim/config.hpp"
#include "wormhole/fabric.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

class NodeInterface {
 public:
  /// `fault` is the network's fault plane (nullptr when the run has no
  /// dynamic fault schedule); the interface only reads reachability.
  NodeInterface(NodeId node, const sim::SimConfig& config,
                const topo::KAryNCube& topology, MessageLog& log,
                CircuitTable& circuits, wh::Fabric& fabric,
                ControlPlane* control, DataPlane* data,
                const fault::FaultPlane* fault,
                const Instrumentation& instrumentation, sim::Rng rng);

  NodeId node() const noexcept { return node_; }

  /// Accept a message created in the log (src == this node).
  void submit(MessageId id, Cycle now);

  /// CARP: ask for a circuit toward `dest`. Returns false when the cache
  /// cannot host the entry (every slot busy). Idempotent while a circuit
  /// or attempt for `dest` exists. `max_message_flits` sizes the circuit's
  /// end-point buffers ("buffer size is determined by the longest message
  /// of the set"); 0 falls back to the CLRP speculative size.
  bool establish_circuit(NodeId dest, Cycle now,
                         std::int32_t max_message_flits = 0);
  /// CARP: tear the circuit down once queued traffic has drained.
  void release_circuit(NodeId dest, Cycle now);

  // -- event handlers (invoked by Network's dispatch) ----------------------
  void on_probe_result(const ProbeResult& result, Cycle now);
  void on_release_demand(const ReleaseDemand& demand, Cycle now);
  void on_transfer_done(const TransferDone& done, Cycle now);
  /// A dynamic link failure killed this node's established circuit toward
  /// `dest`: invalidate the cache entry, resend the aborted in-flight
  /// message (if any) over the wormhole plane and resubmit the queue.
  void on_circuit_killed(CircuitId circuit, NodeId dest, MessageId aborted,
                         Cycle now);

  /// Per-cycle work, split into a sequential and a parallel-safe half.
  /// pump_retries touches shared protocol state (circuit table, control
  /// plane, sequential id allocation) and must run in the sequential part
  /// of the cycle; pump_streams touches only this node's router and
  /// counts injections into the shard outbox, so an engine may run it
  /// concurrently with other nodes' pump_streams.
  void pump_retries(Cycle now);
  void pump_streams(Cycle now, wh::ShardIo& io);

  const CircuitCache& cache() const noexcept { return cache_; }

  struct Stats {
    std::uint64_t circuit_messages = 0;
    std::uint64_t wormhole_messages = 0;
    std::uint64_t fallback_messages = 0;
    std::uint64_t setups_started = 0;
    std::uint64_t setups_succeeded = 0;
    std::uint64_t setups_failed = 0;
    std::uint64_t release_demands_honored = 0;
    std::uint64_t release_demands_discarded = 0;
    std::uint64_t buffer_reallocs = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t setup_retries = 0;  ///< PCS-only backoff retries
    std::uint64_t circuits_invalidated = 0;   ///< killed by link failures
    std::uint64_t unreachable_fallbacks = 0;  ///< DV said: no circuit path
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Serialize the circuit cache, per-destination protocol state (setup
  /// sequencers included), pending wormhole packets/streams, and stats
  /// (snapshot/restore).
  void snap(snap::Archive& ar);

 private:
  struct DestState {
    std::deque<MessageId> queue;  ///< waiting for setup outcome / circuit slot
    std::optional<SetupSequencer> setup;
    bool release_urgent = false;   ///< CLRP demand: stop after current message
    bool release_when_drained = false;  ///< CARP: release once queue empties
    /// CARP buffer request for the circuit being set up (0 = unspecified).
    std::int32_t carp_buffer_flits = 0;
    /// PCS-only mode: a failed setup retries after a backoff instead of
    /// falling back to wormhole switching.
    bool needs_retry = false;
    Cycle retry_at = 0;
  };

  DestState& dest_state(NodeId dest) { return dests_[dest]; }
  bool circuits_enabled() const noexcept { return control_ != nullptr; }
  /// Paper section 3.1: stagger InitialSwitch across neighbors, e.g. node
  /// (x, y) first tries switch (x + y) mod k.
  std::int32_t initial_switch() const;

  /// Launch the current attempt of ds.setup for dest (circuit exists).
  void launch_attempt(NodeId dest, DestState& ds, Cycle now);
  /// Begin a CLRP/CARP setup toward dest. Returns false when the cache
  /// cannot take the entry.
  bool start_setup(NodeId dest, SetupSequencer::Mode mode, Cycle now);
  /// Attempt exhausted or cache entry gone: flush queue to wormhole.
  void abandon_setup(NodeId dest, DestState& ds, Cycle now);
  /// Start the next queued message if the circuit is idle.
  void try_start_transfer(NodeId dest, Cycle now);
  /// Invalidate the entry and send the teardown flit (circuit idle).
  void teardown_now(NodeId dest, CacheEntry& entry, Cycle now);
  /// Resubmit messages (used when a circuit goes away under a queue).
  void requeue(std::deque<MessageId> msgs, Cycle now);
  void send_wormhole(MessageId id, MessageMode mode, Cycle now);

  // Shard-safety tags (docs/ENGINE.md, enforced by tools/shardlint.py).
  NodeId node_;       // [shard: ro] [snap: skip] identity, fixed at construction
  const sim::SimConfig& config_;     // [shard: ro]
  const topo::KAryNCube& topology_;  // [shard: ro]
  MessageLog& log_;                  // [shard: seq]
  CircuitTable& circuits_;           // [shard: seq]
  /// pump_streams only injects into this node's own router. [shard: owned]
  wh::Fabric& fabric_;
  /// Null when k == 0 (pure wormhole network). [shard: seq]
  ControlPlane* control_;  // [snap: skip] wiring; plane snapped by Network
  DataPlane* data_;   // [shard: seq] [snap: skip] wiring; snapped by Network
  /// Null without a dynamic fault schedule; reads only (the Network
  /// advances it in the sequential prologue). [shard: ro]
  const fault::FaultPlane* fault_;  // [snap: skip] wiring; snapped by Network
  const Instrumentation& instr_;  // [shard: ro]
  CircuitCache cache_;            // [shard: seq]

  std::map<NodeId, DestState> dests_;  // [shard: seq]

  /// Wormhole injection: pending packets and one active stream per VC.
  /// Without segmentation a packet is the whole message; with it, packets
  /// of one message may stream on several VCs concurrently.
  struct Packet {
    MessageId msg = kInvalidMessage;
    NodeId dest = kInvalidNode;
    std::int32_t start = 0;       ///< message-relative seq of first flit
    std::int32_t count = 0;       ///< flits in this packet
    std::int32_t msg_length = 0;
    Cycle created = 0;
  };
  struct Stream {
    Packet pkt;
    std::int32_t sent = 0;
    bool active() const noexcept { return pkt.msg != kInvalidMessage; }
  };
  std::deque<Packet> wormhole_pending_;  // [shard: owned]
  std::vector<Stream> streams_;          // [shard: owned]

  Stats stats_;  // [shard: seq]
};

}  // namespace wavesim::core
