// Setup-attempt sequencing for the two routing protocols of the paper.
//
// CLRP (section 3.1) establishes a circuit in phases:
//   phase 1: probe with Force=0 over InitialSwitch, then the next switch
//            modulo k, until all k switches were tried;
//   phase 2: probe with Force=1, same switch order;
//   phase 3: give up -> wormhole (signalled here by exhaustion).
// The section also names two simplifications, exposed as variants:
//   kForceFirst   -- set Force on the very first probe (skip phase 1);
//   kSingleSwitch -- never try more than InitialSwitch in either phase.
//
// CARP (section 3.2) tries each switch once with Force=0 and falls back to
// wormhole switching on exhaustion; Force never applies.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

struct SetupAttempt {
  std::int32_t switch_index = 0;
  bool force = false;

  friend bool operator==(const SetupAttempt&, const SetupAttempt&) = default;
};

class SetupSequencer {
 public:
  enum class Mode { kClrp, kCarp };

  /// `initial_switch` is the Fig.-5 InitialSwitch field; the paper suggests
  /// staggering it across neighboring nodes (e.g. (x+y) mod k).
  SetupSequencer(Mode mode, sim::ClrpVariant variant,
                 std::int32_t num_switches, std::int32_t initial_switch);

  /// The attempt to launch now.
  SetupAttempt current() const;

  /// Record a failed attempt and move on. Returns false when the sequence
  /// is exhausted (CLRP phase 3 / CARP wormhole fallback).
  bool advance();

  bool exhausted() const noexcept { return exhausted_; }
  /// 1 or 2 for CLRP (the Force phase); always 1 for CARP.
  std::int32_t phase() const noexcept { return phase_; }
  std::int32_t attempts_made() const noexcept { return attempts_; }

  /// Serialize every field, configuration included (snapshot/restore): a
  /// sequencer is created per setup attempt, so restore rebuilds it
  /// wholesale rather than replaying construction arguments.
  void snap(snap::Archive& ar);

 private:
  std::int32_t switches_per_phase() const noexcept;

  Mode mode_;
  sim::ClrpVariant variant_;
  std::int32_t num_switches_;
  std::int32_t initial_switch_;
  std::int32_t phase_ = 1;
  std::int32_t tried_ = 0;  ///< attempts consumed within the current phase
  std::int32_t attempts_ = 0;
  bool exhausted_ = false;
};

}  // namespace wavesim::core
