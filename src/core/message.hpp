// Per-message bookkeeping shared by the node interfaces and statistics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/types.hpp"
#include "snap/archive.hpp"

namespace wavesim::core {

/// How a message ultimately travelled.
enum class MessageMode : std::uint8_t {
  kUnset,
  kCircuitHit,        ///< used a circuit that was already established
  kCircuitAfterSetup, ///< waited for (and used) a fresh circuit
  kWormholeFallback,  ///< circuit setup failed; fell back to S0 wormhole
  kWormholePolicy,    ///< sent via wormhole by protocol policy
};

const char* to_string(MessageMode mode) noexcept;

struct MessageRecord {
  MessageId id = kInvalidMessage;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::int32_t length = 0;
  Cycle created = 0;
  Cycle delivered = 0;  ///< last flit arrived at the destination
  MessageMode mode = MessageMode::kUnset;
  bool done = false;
  /// Wormhole flits that reached the destination so far (packet
  /// reassembly when segmentation is enabled).
  std::int32_t flits_received = 0;

  double latency() const noexcept {
    return static_cast<double>(delivered - created);
  }
};

/// Dense message registry; MessageId is the index.
class MessageLog {
 public:
  MessageId create(NodeId src, NodeId dest, std::int32_t length, Cycle now) {
    MessageRecord rec;
    rec.id = static_cast<MessageId>(records_.size());
    rec.src = src;
    rec.dest = dest;
    rec.length = length;
    rec.created = now;
    records_.push_back(rec);
    return rec.id;
  }

  MessageRecord& at(MessageId id) { return records_.at(id); }
  const MessageRecord& at(MessageId id) const { return records_.at(id); }
  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<MessageRecord>& all() const noexcept { return records_; }

  void mark_delivered(MessageId id, Cycle delivered) {
    MessageRecord& rec = at(id);
    if (rec.done) throw std::logic_error("MessageLog: delivered twice");
    rec.delivered = delivered;
    rec.done = true;
  }

  /// Serialize all records (snapshot/restore).
  void snap(snap::Archive& ar) {
    ar.vec(records_, [](snap::Archive& a, MessageRecord& r) {
      a.pod(r.id);
      a.pod(r.src);
      a.pod(r.dest);
      a.pod(r.length);
      a.pod(r.created);
      a.pod(r.delivered);
      a.pod(r.mode);
      a.pod(r.done);
      a.pod(r.flits_received);
    });
  }

 private:
  std::vector<MessageRecord> records_;
};

}  // namespace wavesim::core
