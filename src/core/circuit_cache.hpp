// Circuit Cache (paper Fig. 5): per-node registers in the network
// interface recording the circuits that start at this node, plus the
// replacement machinery CLRP uses when the cache is full.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace wavesim::snap {
class Archive;
}  // namespace wavesim::snap

namespace wavesim::core {

struct CacheEntry {
  bool valid = false;
  NodeId dest = kInvalidNode;
  std::int32_t initial_switch = 0;  ///< first switch tried (avoid re-search)
  std::int32_t switch_index = 0;    ///< switch searched / used (Fig. 5 "Switch")
  PortId channel = kInvalidPort;    ///< output channel at the source
  CircuitId circuit = kInvalidCircuit;
  bool ack_returned = false;        ///< setup complete, circuit usable
  bool in_use = false;              ///< message in transit right now
  bool probing = false;             ///< setup still in progress
  // "Replace" accounting; which field drives eviction depends on policy.
  Cycle last_use = 0;               ///< LRU
  std::uint64_t uses = 0;           ///< LFU
  Cycle created = 0;                ///< FIFO
};

class CircuitCache {
 public:
  CircuitCache(std::int32_t entries, sim::ReplacementPolicy policy,
               sim::Rng rng);

  std::int32_t capacity() const noexcept {
    return static_cast<std::int32_t>(entries_.size());
  }
  sim::ReplacementPolicy policy() const noexcept { return policy_; }

  /// Entry for `dest`, or nullptr. At most one entry per destination.
  CacheEntry* find(NodeId dest);
  const CacheEntry* find(NodeId dest) const;

  /// Claim a slot for a new circuit toward `dest`. Prefers an invalid
  /// slot; otherwise evicts a replaceable entry (valid, established, not
  /// in use, not probing) chosen by the policy. Returns nullptr when every
  /// entry is unevictable. `evicted` receives the displaced entry, if any,
  /// so the caller can tear its circuit down.
  CacheEntry* allocate(NodeId dest, Cycle now,
                       std::optional<CacheEntry>* evicted);

  /// Record a use for replacement accounting (call when a message starts
  /// on the circuit).
  void touch(CacheEntry& entry, Cycle now);

  /// Invalidate (entry must not be in use).
  void invalidate(CacheEntry& entry);

  std::int32_t valid_entries() const;
  /// Direct slot access for tests/diagnostics.
  const CacheEntry& slot(std::int32_t i) const { return entries_.at(i); }

  // -- statistics ---------------------------------------------------------
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  /// Serialize entries, statistics, and the replacement RNG
  /// (snapshot/restore); capacity and policy come from construction.
  void snap(snap::Archive& ar);

 private:
  std::int32_t pick_victim();

  std::vector<CacheEntry> entries_;
  sim::ReplacementPolicy policy_;  // [snap: skip] config, fixed at construction
  sim::Rng rng_;
};

}  // namespace wavesim::core
