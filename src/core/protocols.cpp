#include "core/protocols.hpp"

#include <stdexcept>

#include "snap/archive.hpp"

namespace wavesim::core {

SetupSequencer::SetupSequencer(Mode mode, sim::ClrpVariant variant,
                               std::int32_t num_switches,
                               std::int32_t initial_switch)
    : mode_(mode), variant_(variant), num_switches_(num_switches),
      initial_switch_(initial_switch) {
  if (num_switches < 1) {
    throw std::invalid_argument("SetupSequencer: num_switches < 1");
  }
  if (initial_switch < 0 || initial_switch >= num_switches) {
    throw std::invalid_argument("SetupSequencer: bad initial switch");
  }
  if (mode_ == Mode::kClrp && variant_ == sim::ClrpVariant::kForceFirst) {
    phase_ = 2;  // skip phase 1 entirely
  }
}

std::int32_t SetupSequencer::switches_per_phase() const noexcept {
  if (mode_ == Mode::kClrp && variant_ == sim::ClrpVariant::kSingleSwitch) {
    return 1;
  }
  return num_switches_;
}

SetupAttempt SetupSequencer::current() const {
  if (exhausted_) {
    throw std::logic_error("SetupSequencer: sequence exhausted");
  }
  SetupAttempt attempt;
  attempt.switch_index = (initial_switch_ + tried_) % num_switches_;
  attempt.force = mode_ == Mode::kClrp && phase_ == 2;
  return attempt;
}

bool SetupSequencer::advance() {
  if (exhausted_) return false;
  ++attempts_;
  ++tried_;
  if (tried_ < switches_per_phase()) return true;
  // Phase finished.
  tried_ = 0;
  if (mode_ == Mode::kClrp && phase_ == 1) {
    phase_ = 2;
    return true;
  }
  exhausted_ = true;
  return false;
}

void SetupSequencer::snap(snap::Archive& ar) {
  ar.pod(mode_);
  ar.pod(variant_);
  ar.pod(num_switches_);
  ar.pod(initial_switch_);
  ar.pod(phase_);
  ar.pod(tried_);
  ar.pod(attempts_);
  ar.pod(exhausted_);
}

}  // namespace wavesim::core
