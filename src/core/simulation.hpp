// Public facade of the library.
//
// Typical use:
//   core::Simulation sim(sim::SimConfig::default_torus());
//   sim.send(src, dest, length_flits);
//   sim.run_until_delivered();
//   auto stats = sim.stats();
#pragma once

#include <functional>
#include <memory>

#include "core/network.hpp"
#include "core/step_engine.hpp"
#include "sim/stats.hpp"

namespace wavesim::core {

/// Aggregated results of a run, computed from the message log and the
/// component counters. `min_created` lets benchmarks skip warm-up traffic.
struct SimulationStats {
  std::uint64_t messages_offered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t flits_delivered = 0;

  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;

  /// Delivered payload flits per cycle per node over the measured span.
  double throughput_flits_per_node_cycle = 0.0;

  // Per-mode message counts and mean latencies.
  std::uint64_t circuit_hit_count = 0;
  std::uint64_t circuit_setup_count = 0;
  std::uint64_t fallback_count = 0;
  std::uint64_t wormhole_count = 0;
  double circuit_hit_latency = 0.0;
  double circuit_setup_latency = 0.0;
  double fallback_latency = 0.0;
  double wormhole_latency = 0.0;

  // Circuit machinery (zeros on a pure wormhole configuration).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t probes_launched = 0;
  std::uint64_t probes_succeeded = 0;
  std::uint64_t probes_failed = 0;
  std::uint64_t probe_advances = 0;
  std::uint64_t probe_backtracks = 0;
  std::uint64_t probe_misroutes = 0;
  std::uint64_t release_requests = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t buffer_reallocs = 0;

  // Dynamic faults (zeros without a fault schedule; docs/FAULTS.md).
  std::uint64_t links_failed = 0;
  std::uint64_t links_restored = 0;
  std::uint64_t circuits_killed = 0;       ///< any circuit crossing a dead link
  std::uint64_t circuits_invalidated = 0;  ///< established ones, cache evicted
  std::uint64_t probes_killed = 0;
  std::uint64_t transfers_aborted = 0;
  std::uint64_t unreachable_fallbacks = 0;
  std::uint64_t routes_withdrawn = 0;
  std::uint64_t route_timeouts = 0;
  std::uint64_t dv_updates_sent = 0;
  std::uint64_t dv_triggered_updates = 0;
  std::uint64_t dv_adverts_dropped = 0;

  double cache_hit_rate() const noexcept {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  double setup_success_rate() const noexcept {
    const double total = static_cast<double>(probes_launched);
    return total > 0.0 ? static_cast<double>(probes_succeeded) / total : 0.0;
  }
};

class Simulation {
 public:
  /// Validates the configuration (throws std::invalid_argument).
  explicit Simulation(const sim::SimConfig& config);

  const sim::SimConfig& config() const noexcept { return network_->config(); }
  const topo::KAryNCube& topology() const noexcept {
    return network_->topology();
  }
  Cycle now() const noexcept { return network_->now(); }

  MessageId send(NodeId src, NodeId dest, std::int32_t length_flits) {
    return network_->send(src, dest, length_flits);
  }
  bool establish_circuit(NodeId src, NodeId dest,
                         std::int32_t max_message_flits = 0) {
    return network_->establish_circuit(src, dest, max_message_flits);
  }
  void release_circuit(NodeId src, NodeId dest) {
    network_->release_circuit(src, dest);
  }
  bool message_done(MessageId id) const {
    return network_->messages().at(id).done;
  }

  void step() {
    if (engine_) {
      engine_->step(*network_);
    } else {
      network_->step();
    }
    if (step_hook_) step_hook_(network_->now());
  }
  void run(Cycle cycles) {
    // A per-cycle hook pins the run to single steps; otherwise hand the
    // whole span to the engine, which may batch barriers (lookahead).
    if (engine_ && !step_hook_) {
      engine_->run(*network_, cycles);
      return;
    }
    for (Cycle i = 0; i < cycles; ++i) step();
  }

  /// Step until every offered message is delivered and the network drains.
  /// Returns false if `max_cycles` elapse first (a watchdog for the
  /// deadlock/livelock guarantees of Theorems 1-4).
  bool run_until_delivered(Cycle max_cycles = 1'000'000);

  /// Aggregate statistics over messages created at or after `min_created`.
  SimulationStats stats(Cycle min_created = 0) const;

  /// Latency histogram over delivered messages created at or after
  /// `min_created` (fixed-width bins over [lo, hi)).
  sim::Histogram latency_histogram(double lo, double hi, std::size_t bins,
                                   Cycle min_created = 0) const;

  /// Install an event sink (see core/instrumentation.hpp).
  void set_event_sink(Instrumentation::Sink sink) {
    network_->set_event_sink(std::move(sink));
  }

  /// Install a per-cycle hook, called after each step with the new cycle
  /// number (observability sampling). Empty hook = no per-cycle cost
  /// beyond one branch. The hook must not mutate the simulation.
  using StepHook = std::function<void(Cycle)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }

  /// Install a step engine (see core/step_engine.hpp); the simulation
  /// takes ownership. nullptr restores the default sequential stepper.
  void set_engine(std::unique_ptr<StepEngine> engine) {
    engine_ = std::move(engine);
  }
  const StepEngine* engine() const noexcept { return engine_.get(); }

  Network& network() noexcept { return *network_; }
  const Network& network() const noexcept { return *network_; }

 private:
  std::unique_ptr<Network> network_;
  std::unique_ptr<StepEngine> engine_;
  StepHook step_hook_;
};

}  // namespace wavesim::core
